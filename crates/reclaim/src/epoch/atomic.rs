//! Tagged atomic pointers whose targets are protected by a reclamation
//! guard.
//!
//! The guard parameter on every load-like method is a pure *lifetime
//! witness*: any guard type works (the epoch [`Guard`](super::Guard), a
//! hazard-pointer guard, the debug backend's guard, …), and the returned
//! [`Shared`] borrows it so shared nodes cannot outlive the protection
//! scope. Which guard actually makes the dereference sound is the
//! [`Reclaimer`](crate::Reclaimer) backend's contract.

use cds_atomic::{AtomicUsize, Ordering};
use std::fmt;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};

/// Returns the bitmask of tag bits available for `T` (its alignment − 1).
#[inline]
fn tag_mask<T>() -> usize {
    std::mem::align_of::<T>() - 1
}

#[inline]
fn compose<T>(raw: *mut T, tag: usize) -> usize {
    let mask = tag_mask::<T>();
    debug_assert_eq!(raw as usize & mask, 0, "pointer is not aligned");
    (raw as usize) | (tag & mask)
}

#[inline]
fn decompose<T>(data: usize) -> (*mut T, usize) {
    let mask = tag_mask::<T>();
    ((data & !mask) as *mut T, data & mask)
}

/// An atomic pointer to a heap-allocated `T`, usable only under an epoch
/// [`Guard`].
///
/// Like `AtomicPtr`, but (a) loads return a [`Shared`] whose lifetime is
/// tied to the guard — the type system thus enforces that shared nodes are
/// only dereferenced while pinned — and (b) the low (alignment) bits of the
/// pointer can carry a **tag**, which lock-free lists and trees use as the
/// logical-deletion mark (design decision #2 in DESIGN.md).
///
/// # Example
///
/// ```
/// use cds_reclaim::epoch::{self, Atomic};
/// use cds_atomic::Ordering;
///
/// let a = Atomic::new(42);
/// let guard = epoch::pin();
/// let p = a.load(Ordering::Acquire, &guard);
/// assert_eq!(unsafe { *p.deref() }, 42);
/// # drop(guard);
/// # unsafe { drop(a.into_owned()); }
/// ```
pub struct Atomic<T> {
    data: AtomicUsize,
    _marker: PhantomData<*mut T>,
}

// SAFETY: `Atomic<T>` hands out `&T` across threads (via `Shared::deref`)
// and moves `T` between threads on reclamation.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// Creates a null pointer.
    pub fn null() -> Self {
        Atomic {
            data: AtomicUsize::new(0),
            _marker: PhantomData,
        }
    }

    /// Allocates `value` on the heap and stores the pointer.
    pub fn new(value: T) -> Self {
        Owned::new(value).into()
    }

    /// Loads the pointer. `_guard` is any reclamation guard, used purely
    /// as a lifetime witness.
    pub fn load<'g, G>(&self, ord: Ordering, _guard: &'g G) -> Shared<'g, T> {
        Shared::from_data(self.data.load(ord))
    }

    /// Stores `new` into the atomic.
    pub fn store(&self, new: Shared<'_, T>, ord: Ordering) {
        self.data.store(new.data, ord);
    }

    /// Stores `new`, returning the previous value.
    pub fn swap<'g, G>(&self, new: Shared<'_, T>, ord: Ordering, _guard: &'g G) -> Shared<'g, T> {
        Shared::from_data(self.data.swap(new.data, ord))
    }

    /// Compare-and-exchanges `current` for `new`.
    ///
    /// On failure returns the actual value observed. Both the pointer and
    /// the tag participate in the comparison.
    pub fn compare_exchange<'g, G>(
        &self,
        current: Shared<'_, T>,
        new: Shared<'_, T>,
        success: Ordering,
        failure: Ordering,
        _guard: &'g G,
    ) -> Result<Shared<'g, T>, Shared<'g, T>> {
        match self
            .data
            .compare_exchange(current.data, new.data, success, failure)
        {
            Ok(d) => Ok(Shared::from_data(d)),
            Err(d) => Err(Shared::from_data(d)),
        }
    }

    /// Bitwise-ors the tag bits with `tag`, returning the previous value.
    ///
    /// This is how logical-deletion marks are set atomically without
    /// replacing the pointer.
    pub fn fetch_or<'g, G>(&self, tag: usize, ord: Ordering, _guard: &'g G) -> Shared<'g, T> {
        Shared::from_data(self.data.fetch_or(tag & tag_mask::<T>(), ord))
    }

    /// Takes ownership of the pointee.
    ///
    /// # Safety
    ///
    /// The caller must have unique access to the atomic (e.g. inside
    /// `Drop`), and the pointer must not be null.
    pub unsafe fn into_owned(self) -> Owned<T> {
        let data = self.data.into_inner();
        debug_assert_ne!(data & !tag_mask::<T>(), 0, "into_owned on null");
        Owned {
            data,
            _marker: PhantomData,
        }
    }

    /// Loads the raw pointer value without a guard.
    ///
    /// Only meaningful for null-checks and diagnostics; dereferencing the
    /// result is not possible through the safe API.
    pub fn load_raw(&self, ord: Ordering) -> *mut T {
        decompose::<T>(self.data.load(ord)).0
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> From<Owned<T>> for Atomic<T> {
    fn from(owned: Owned<T>) -> Self {
        let data = owned.data;
        std::mem::forget(owned);
        Atomic {
            data: AtomicUsize::new(data),
            _marker: PhantomData,
        }
    }
}

impl<T> fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (raw, tag) = decompose::<T>(self.data.load(Ordering::Relaxed));
        f.debug_struct("Atomic")
            .field("raw", &raw)
            .field("tag", &tag)
            .finish()
    }
}

/// An owned, heap-allocated `T` that has not yet been published.
///
/// The single-owner analogue of `Box<T>` in the epoch world: create nodes
/// as `Owned`, initialize them freely (it implements `Deref`/`DerefMut`),
/// then publish with [`into_shared`](Owned::into_shared).
pub struct Owned<T> {
    data: usize,
    _marker: PhantomData<Box<T>>,
}

impl<T> Owned<T> {
    /// Allocates `value` on the heap.
    pub fn new(value: T) -> Self {
        Owned {
            data: compose(Box::into_raw(Box::new(value)), 0),
            _marker: PhantomData,
        }
    }

    /// Returns the tag bits.
    pub fn tag(&self) -> usize {
        decompose::<T>(self.data).1
    }

    /// Returns the same pointer with the tag bits set to `tag`.
    pub fn with_tag(mut self, tag: usize) -> Self {
        let (raw, _) = decompose::<T>(self.data);
        self.data = compose(raw, tag);
        self
    }

    /// Publishes the pointer into the guard-protected world.
    ///
    /// Under weak-memory exploration this declares the pointee a
    /// *published region*: the release operation that makes the pointer
    /// reachable must synchronize with readers before they dereference
    /// it, or the explorer reports a region race (see
    /// `cds_atomic::stress::publish_region`).
    pub fn into_shared<'g, G>(self, _guard: &'g G) -> Shared<'g, T> {
        let data = self.data;
        std::mem::forget(self);
        #[cfg(feature = "stress")]
        cds_atomic::stress::publish_region(
            decompose::<T>(data).0 as usize,
            std::mem::size_of::<T>(),
        );
        Shared::from_data(data)
    }

    /// Converts back into a plain `Box`, dropping the tag.
    pub fn into_box(self) -> Box<T> {
        let (raw, _) = decompose::<T>(self.data);
        std::mem::forget(self);
        // SAFETY: `raw` came from `Box::into_raw` and we are the unique owner.
        unsafe { Box::from_raw(raw) }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        let (raw, _) = decompose::<T>(self.data);
        // SAFETY: unique ownership.
        unsafe { drop(Box::from_raw(raw)) }
    }
}

impl<T> Deref for Owned<T> {
    type Target = T;

    fn deref(&self) -> &T {
        let (raw, _) = decompose::<T>(self.data);
        // SAFETY: unique ownership of a valid allocation.
        unsafe { &*raw }
    }
}

impl<T> DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        let (raw, _) = decompose::<T>(self.data);
        // SAFETY: unique ownership of a valid allocation.
        unsafe { &mut *raw }
    }
}

impl<T: fmt::Debug> fmt::Debug for Owned<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Owned")
            .field("value", &**self)
            .field("tag", &self.tag())
            .finish()
    }
}

/// A pointer to an epoch-protected object, valid for the guard lifetime
/// `'g`.
///
/// `Shared` is `Copy`; it is the loaned, possibly-tagged view of a node that
/// other threads may concurrently unlink. Dereferencing is `unsafe` because
/// the type system cannot know that the *specific* atomic it was loaded from
/// belongs to the data structure the guard pins for — that invariant is the
/// data structure author's obligation.
pub struct Shared<'g, T> {
    data: usize,
    _marker: PhantomData<(&'g (), *const T)>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<T> Copy for Shared<'_, T> {}

impl<'g, T> Shared<'g, T> {
    pub(crate) fn from_data(data: usize) -> Self {
        Shared {
            data,
            _marker: PhantomData,
        }
    }

    /// The null pointer.
    pub fn null() -> Self {
        Shared {
            data: 0,
            _marker: PhantomData,
        }
    }

    /// Creates a `Shared` from a raw pointer (tag zero).
    ///
    /// Useful for algorithms that stash raw pointers in operation
    /// descriptors and later need to compare-and-exchange against them.
    /// Creating the `Shared` is safe; dereferencing it is governed by
    /// [`deref`](Shared::deref)'s contract as usual.
    pub fn from_raw(raw: *mut T) -> Shared<'g, T> {
        Shared::from_data(compose(raw, 0))
    }

    /// Returns `true` if the pointer (ignoring tag bits) is null.
    pub fn is_null(&self) -> bool {
        decompose::<T>(self.data).0.is_null()
    }

    /// Returns the raw, untagged pointer.
    pub fn as_raw(&self) -> *mut T {
        decompose::<T>(self.data).0
    }

    /// Returns the tag bits.
    pub fn tag(&self) -> usize {
        decompose::<T>(self.data).1
    }

    /// Returns the same pointer with the tag bits set to `tag`.
    pub fn with_tag(&self, tag: usize) -> Shared<'g, T> {
        let (raw, _) = decompose::<T>(self.data);
        Shared::from_data(compose(raw, tag))
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null and must point into a data structure
    /// whose reclamation is governed by the collector this guard is pinned
    /// to, so the pointee cannot be freed before `'g` ends.
    pub unsafe fn deref(&self) -> &'g T {
        let (raw, _) = decompose::<T>(self.data);
        debug_assert!(!raw.is_null(), "deref of null Shared");
        #[cfg(feature = "stress")]
        cds_atomic::stress::check_region(raw as usize, std::mem::size_of::<T>());
        // SAFETY: per the caller contract above.
        unsafe { &*raw }
    }

    /// Like [`deref`](Shared::deref), but returns `None` for null.
    ///
    /// # Safety
    ///
    /// Same contract as [`deref`](Shared::deref) for the non-null case.
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        let (raw, _) = decompose::<T>(self.data);
        #[cfg(feature = "stress")]
        if !raw.is_null() {
            cds_atomic::stress::check_region(raw as usize, std::mem::size_of::<T>());
        }
        // SAFETY: per the caller contract.
        unsafe { raw.as_ref() }
    }

    /// Takes ownership of the pointee.
    ///
    /// # Safety
    ///
    /// The caller must guarantee the object is no longer reachable by any
    /// other thread (e.g. a freshly created node that lost its publishing
    /// CAS) and non-null.
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.is_null(), "into_owned on null Shared");
        Owned {
            data: self.data,
            _marker: PhantomData,
        }
    }
}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        self.data == other.data
    }
}

impl<T> Eq for Shared<'_, T> {}

impl<T> fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (raw, tag) = decompose::<T>(self.data);
        f.debug_struct("Shared")
            .field("raw", &raw)
            .field("tag", &tag)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::epoch;

    #[test]
    fn tag_round_trip() {
        let guard = epoch::pin();
        let a = Atomic::new(5u64); // align 8 => 3 tag bits
        let p = a.load(Ordering::Relaxed, &guard);
        assert_eq!(p.tag(), 0);
        let tagged = p.with_tag(3);
        assert_eq!(tagged.tag(), 3);
        assert_eq!(tagged.as_raw(), p.as_raw());
        drop(guard);
        unsafe { drop(a.into_owned()) };
    }

    #[test]
    fn fetch_or_sets_mark() {
        let guard = epoch::pin();
        let a = Atomic::new(1u64);
        let before = a.fetch_or(1, Ordering::AcqRel, &guard);
        assert_eq!(before.tag(), 0);
        assert_eq!(a.load(Ordering::Relaxed, &guard).tag(), 1);
        drop(guard);
        unsafe { drop(a.into_owned()) };
    }

    #[test]
    fn compare_exchange_checks_tag() {
        let guard = epoch::pin();
        let a = Atomic::new(1u64);
        let p = a.load(Ordering::Relaxed, &guard);
        // Wrong expected tag fails even though the pointer matches.
        assert!(a
            .compare_exchange(
                p.with_tag(1),
                p,
                Ordering::AcqRel,
                Ordering::Relaxed,
                &guard
            )
            .is_err());
        drop(guard);
        unsafe { drop(a.into_owned()) };
    }

    #[test]
    fn owned_deref_and_box_round_trip() {
        let mut o = Owned::new(vec![1, 2]);
        o.push(3);
        assert_eq!(o.len(), 3);
        let b = o.into_box();
        assert_eq!(*b, vec![1, 2, 3]);
    }

    #[test]
    fn null_checks() {
        let a: Atomic<u32> = Atomic::null();
        let guard = epoch::pin();
        assert!(a.load(Ordering::Relaxed, &guard).is_null());
        assert!(Shared::<u32>::null().is_null());
        assert!(unsafe { Shared::<u32>::null().as_ref() }.is_none());
    }
}

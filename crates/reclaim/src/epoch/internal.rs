//! Internal machinery of the epoch-based collector: the global state shared
//! by all participants and the per-thread participant record.

use cds_atomic::{fence, AtomicUsize, Ordering};
use std::cell::{Cell, UnsafeCell};
use std::fmt;
use std::sync::{Arc, Mutex};

/// How many deferred items a participant accumulates locally before it
/// flushes them to the global queue (and attempts collection).
const LOCAL_BAG_CAP: usize = 64;

/// Every `PINNINGS_BETWEEN_COLLECT` pinnings a participant attempts to
/// advance the epoch and collect, so garbage is reclaimed even on workloads
/// that never overflow a local bag.
const PINNINGS_BETWEEN_COLLECT: usize = 128;

/// A deferred destruction: a type-erased pointer plus its destructor.
///
/// Stored without allocation (two words); the destructor reconstructs the
/// original `Box<T>` and drops it.
pub(crate) struct Deferred {
    ptr: *mut u8,
    dtor: unsafe fn(*mut u8),
}

// SAFETY: a `Deferred` is only created for pointers whose payload is `Send`
// (enforced by the public `defer_destroy`/`defer` APIs), so executing the
// destructor on another thread is sound.
unsafe impl Send for Deferred {}

impl Deferred {
    /// Creates a deferred destruction of the boxed value behind `ptr`.
    ///
    /// # Safety
    ///
    /// `ptr` must have been produced by `Box::into_raw` and must not be
    /// dropped by anyone else.
    pub(crate) unsafe fn destroy_box<T>(ptr: *mut T) -> Self {
        unsafe fn dtor<T>(p: *mut u8) {
            // SAFETY: `p` was created from `Box::into_raw::<T>` in
            // `destroy_box` and ownership was transferred to the collector.
            unsafe { drop(Box::from_raw(p.cast::<T>())) }
        }
        Deferred {
            ptr: ptr.cast(),
            dtor: dtor::<T>,
        }
    }

    /// Runs the deferred destructor.
    pub(crate) fn call(self) {
        // SAFETY: constructed via `destroy_box`; called exactly once.
        unsafe { (self.dtor)(self.ptr) }
    }
}

impl fmt::Debug for Deferred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Deferred").finish_non_exhaustive()
    }
}

/// Global collector state shared by all participants.
pub(crate) struct Global {
    /// The global epoch. Plain counter; wrapping arithmetic throughout.
    epoch: AtomicUsize,
    /// Registry of active participants. Locked only on registration,
    /// unregistration, and epoch-advance scans — never on the pin/defer
    /// fast path.
    participants: Mutex<Vec<Arc<Local>>>,
    /// Garbage that has been flushed out of local bags, tagged with the
    /// epoch at which it was deferred.
    garbage: Mutex<Vec<(usize, Deferred)>>,
}

impl Global {
    pub(crate) fn new() -> Self {
        Global {
            epoch: AtomicUsize::new(0),
            participants: Mutex::new(Vec::new()),
            garbage: Mutex::new(Vec::new()),
        }
    }

    pub(crate) fn epoch(&self) -> usize {
        self.epoch.load(Ordering::Relaxed)
    }

    pub(crate) fn register(self: &Arc<Self>) -> Arc<Local> {
        let local = Arc::new(Local {
            epoch: AtomicUsize::new(0),
            global: Arc::clone(self),
            guard_count: Cell::new(0),
            pin_count: Cell::new(0),
            handle_dropped: Cell::new(false),
            bag: UnsafeCell::new(Vec::new()),
        });
        self.participants.lock().unwrap().push(Arc::clone(&local));
        local
    }

    fn unregister(&self, local: &Local) {
        let mut parts = self.participants.lock().unwrap();
        parts.retain(|p| !std::ptr::eq(&**p, local));
    }

    /// Attempts to advance the global epoch by one.
    ///
    /// Succeeds only if every *pinned* participant has observed the current
    /// epoch; otherwise leaves the epoch unchanged. Returns the epoch value
    /// in force after the call.
    pub(crate) fn try_advance(&self) -> usize {
        let global_epoch = self.epoch.load(Ordering::Relaxed);
        fence(Ordering::SeqCst);

        let parts = self.participants.lock().unwrap();
        for p in parts.iter() {
            let e = p.epoch.load(Ordering::Relaxed);
            if e & 1 == 1 && e >> 1 != global_epoch {
                // A participant is pinned in an older epoch.
                return global_epoch;
            }
        }
        drop(parts);
        fence(Ordering::Acquire);

        // Multiple threads may race here; `compare_exchange` keeps the epoch
        // monotonic (each success advances by exactly one).
        let _ = self.epoch.compare_exchange(
            global_epoch,
            global_epoch.wrapping_add(1),
            Ordering::Release,
            Ordering::Relaxed,
        );
        self.epoch.load(Ordering::Relaxed)
    }

    /// Moves `items` onto the global garbage queue.
    pub(crate) fn push_garbage(&self, items: impl IntoIterator<Item = (usize, Deferred)>) {
        self.garbage.lock().unwrap().extend(items);
    }

    /// Frees every queued item that is at least two epochs old.
    ///
    /// An item deferred at epoch `e` was unreachable for threads pinning at
    /// epochs `> e`; once the global epoch reaches `e + 2`, every thread
    /// pinned at `e` or earlier has unpinned, so no live reference can
    /// remain.
    pub(crate) fn collect(&self) -> usize {
        let global_epoch = self.try_advance();
        let eligible: Vec<Deferred> = {
            let mut garbage = self.garbage.lock().unwrap();
            let mut eligible = Vec::new();
            garbage.retain_mut(|(e, d)| {
                if global_epoch.wrapping_sub(*e) >= 2 {
                    // Move the deferred item out; the slot is removed.
                    eligible.push(std::mem::replace(
                        d,
                        Deferred {
                            ptr: std::ptr::null_mut(),
                            dtor: |_| {},
                        },
                    ));
                    false
                } else {
                    true
                }
            });
            eligible
        };
        let n = eligible.len();
        cds_obs::add(cds_obs::Event::FreedEbr, n as u64);
        for d in eligible {
            d.call();
        }
        n
    }

    /// Number of items waiting on the global queue (diagnostics).
    pub(crate) fn garbage_len(&self) -> usize {
        self.garbage.lock().unwrap().len()
    }
}

impl Drop for Global {
    fn drop(&mut self) {
        // No participants can remain (each holds an `Arc<Global>`), so all
        // garbage is unreachable and safe to free.
        let garbage = self.garbage.get_mut().unwrap();
        cds_obs::add(cds_obs::Event::FreedEbr, garbage.len() as u64);
        for (_, d) in garbage.drain(..) {
            d.call();
        }
    }
}

impl fmt::Debug for Global {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Global")
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

/// A per-thread participant record.
///
/// Only the owning thread touches the `Cell`/`UnsafeCell` fields; the
/// `epoch` atomic is additionally read by other threads during
/// [`Global::try_advance`] scans.
pub(crate) struct Local {
    /// `0` when unpinned; `(epoch << 1) | 1` when pinned.
    epoch: AtomicUsize,
    global: Arc<Global>,
    guard_count: Cell<usize>,
    pin_count: Cell<usize>,
    handle_dropped: Cell<bool>,
    bag: UnsafeCell<Vec<(usize, Deferred)>>,
}

// SAFETY: see the type-level comment — cross-thread access is limited to the
// `epoch` atomic.
unsafe impl Send for Local {}
unsafe impl Sync for Local {}

impl Local {
    /// Pins the participant (reentrant). Returns `true` if this call
    /// transitioned from unpinned to pinned.
    pub(crate) fn pin(&self) {
        let count = self.guard_count.get();
        self.guard_count.set(count + 1);
        if count > 0 {
            return;
        }

        // Publish the epoch we are entering. The SeqCst fence makes the
        // store visible to `try_advance` scans before we read any shared
        // pointers; the re-check loop bounds how stale our published epoch
        // can be.
        let mut e = self.global.epoch.load(Ordering::Relaxed);
        loop {
            self.epoch.store((e << 1) | 1, Ordering::Relaxed);
            fence(Ordering::SeqCst);
            let current = self.global.epoch.load(Ordering::Relaxed);
            if current == e {
                break;
            }
            e = current;
        }

        let pinnings = self.pin_count.get().wrapping_add(1);
        self.pin_count.set(pinnings);
        if pinnings.is_multiple_of(PINNINGS_BETWEEN_COLLECT) {
            self.global.collect();
        }
    }

    /// Unpins the participant (reentrant). When the outermost guard drops,
    /// the participant leaves the epoch and, if its handle has been
    /// dropped, unregisters.
    pub(crate) fn unpin(&self) {
        let count = self.guard_count.get();
        debug_assert!(count > 0, "unpin without matching pin");
        self.guard_count.set(count - 1);
        if count == 1 {
            self.epoch.store(0, Ordering::Release);
            if self.handle_dropped.get() {
                self.retire_record();
            }
        }
    }

    /// Defers destruction of `deferred` until the current epoch is two
    /// advances old.
    ///
    /// Must be called while pinned.
    pub(crate) fn defer(&self, deferred: Deferred) {
        debug_assert!(self.guard_count.get() > 0, "defer while unpinned");
        let epoch = self.global.epoch.load(Ordering::Relaxed);
        // SAFETY: the bag is only touched by the owning thread.
        let bag = unsafe { &mut *self.bag.get() };
        bag.push((epoch, deferred));
        if bag.len() >= LOCAL_BAG_CAP {
            let items: Vec<_> = std::mem::take(bag);
            self.global.push_garbage(items);
            self.global.collect();
        }
    }

    /// Flushes the local bag to the global queue and runs a collection.
    pub(crate) fn flush(&self) {
        // SAFETY: owning thread only.
        let bag = unsafe { &mut *self.bag.get() };
        if !bag.is_empty() {
            let items: Vec<_> = std::mem::take(bag);
            self.global.push_garbage(items);
        }
        self.global.collect();
    }

    /// Called when the owning `LocalHandle` is dropped.
    pub(crate) fn handle_dropped(&self) {
        self.handle_dropped.set(true);
        if self.guard_count.get() == 0 {
            self.retire_record();
        }
    }

    /// Removes this participant from the registry and donates its bag.
    fn retire_record(&self) {
        // SAFETY: owning thread only, and no guard is active.
        let bag = unsafe { &mut *self.bag.get() };
        if !bag.is_empty() {
            let items: Vec<_> = std::mem::take(bag);
            self.global.push_garbage(items);
        }
        self.global.unregister(self);
    }
}

impl fmt::Debug for Local {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Local")
            .field("pinned", &(self.epoch.load(Ordering::Relaxed) & 1 == 1))
            .finish_non_exhaustive()
    }
}

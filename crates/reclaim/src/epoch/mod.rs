//! Epoch-based memory reclamation.
//!
//! The scheme (Fraser's epochs, as popularized by crossbeam and Keir
//! Fraser's KCAS work) in one paragraph: a global epoch counter advances
//! through time; every thread *pins* the current epoch before it reads
//! shared pointers and unpins when done. When a thread unlinks a node it
//! *defers* the node's destruction, stamping it with the epoch at unlink
//! time. Because the epoch can only advance when every pinned thread has
//! caught up with it, a node stamped with epoch `e` can no longer be
//! referenced by anyone once the global epoch reaches `e + 2` — at that
//! point it is actually freed.
//!
//! Most users interact with three things:
//!
//! * [`pin`] — enter an epoch-protected critical section, returning a
//!   [`Guard`];
//! * [`Atomic`] / [`Owned`] / [`Shared`] — the pointer types whose API makes
//!   it impossible to dereference shared nodes while unpinned;
//! * [`Guard::defer_destroy`] — hand an unlinked node to the collector.
//!
//! A process-wide default [`Collector`] backs [`pin`]; tests that need
//! deterministic reclamation can create their own collector and register
//! explicit [`LocalHandle`]s.
//!
//! # Example: swapping out a node
//!
//! ```
//! use cds_reclaim::epoch::{self, Atomic, Owned};
//! use cds_atomic::Ordering;
//!
//! let head = Atomic::new("old");
//! let guard = epoch::pin();
//! let prev = head.swap(Owned::new("new").into_shared(&guard), Ordering::AcqRel, &guard);
//! unsafe { guard.defer_destroy(prev) };
//! drop(guard);
//! # let g = epoch::pin();
//! # unsafe { drop(head.swap(epoch::Shared::null(), Ordering::AcqRel, &g).into_owned()) };
//! ```

mod atomic;
mod internal;

pub use atomic::{Atomic, Owned, Shared};

use internal::{Deferred, Global, Local};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// An epoch-based garbage collector instance.
///
/// Distinct collectors are fully independent: pinning one does not delay
/// reclamation in another. The data structure crates use the process-wide
/// default collector (via [`pin`]); create explicit collectors for tests or
/// to isolate reclamation domains.
#[derive(Clone)]
pub struct Collector {
    global: Arc<Global>,
}

impl Collector {
    /// Creates a new, independent collector.
    pub fn new() -> Self {
        Collector {
            global: Arc::new(Global::new()),
        }
    }

    /// Registers the current thread, returning its participation handle.
    pub fn register(&self) -> LocalHandle {
        LocalHandle {
            local: self.global.register(),
        }
    }

    /// The current global epoch (diagnostics and tests).
    pub fn epoch(&self) -> usize {
        self.global.epoch()
    }

    /// Number of deferred items on the global queue (diagnostics).
    pub fn global_garbage_len(&self) -> usize {
        self.global.garbage_len()
    }

    /// Attempts to advance the epoch and free eligible garbage, returning
    /// the number of items freed.
    pub fn collect(&self) -> usize {
        self.global.collect()
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Collector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Collector")
            .field("epoch", &self.epoch())
            .finish_non_exhaustive()
    }
}

/// A thread's registration with a [`Collector`].
///
/// Cheap to pin from repeatedly; dropped automatically with the thread for
/// the default collector.
pub struct LocalHandle {
    local: Arc<Local>,
}

impl LocalHandle {
    /// Pins the current epoch, returning a guard.
    ///
    /// Pinning is reentrant: nested guards share the outermost pin.
    pub fn pin(&self) -> Guard {
        self.local.pin();
        Guard {
            local: Some(Arc::clone(&self.local)),
        }
    }
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        self.local.handle_dropped();
    }
}

impl fmt::Debug for LocalHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LocalHandle").finish_non_exhaustive()
    }
}

/// A pinned epoch section.
///
/// While a guard is alive the collector will not free any object deferred
/// during or after the guard's epoch, so [`Shared`] pointers loaded under
/// the guard remain valid. Dropping the guard unpins (for the outermost
/// guard of the thread).
pub struct Guard {
    local: Option<Arc<Local>>,
}

impl Guard {
    /// Creates a guard that performs no pinning.
    ///
    /// Useful when the caller has unique access to a structure (e.g. inside
    /// `Drop` or when holding `&mut`): loads still need a `&Guard`
    /// argument, but no epoch bookkeeping is required because no other
    /// thread can be reclaiming.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that no concurrent thread can retire
    /// objects reachable from the pointers accessed under this guard.
    pub unsafe fn unprotected() -> Guard {
        Guard { local: None }
    }

    /// Defers destruction of the object behind `shared` until no pinned
    /// thread can still hold a reference to it.
    ///
    /// # Safety
    ///
    /// The caller must guarantee that the object has been made unreachable
    /// for threads that pin *after* this call (i.e. it was unlinked from
    /// the structure), that it was allocated via [`Owned`]/[`Atomic::new`],
    /// that no thread will call `defer_destroy` on it again, and that the
    /// object is safe to drop on *any* thread (morally `T: Send`; the bound
    /// is not expressed in the signature because node types routinely
    /// contain raw pointers managed by the same protocol).
    pub unsafe fn defer_destroy<T>(&self, shared: Shared<'_, T>) {
        debug_assert!(!shared.is_null(), "defer_destroy of null");
        // SAFETY: ownership of the allocation passes to the collector, per
        // the caller contract.
        let deferred = unsafe { Deferred::destroy_box(shared.as_raw()) };
        match &self.local {
            Some(local) => local.defer(deferred),
            // Unprotected guard: unique access, destroy immediately.
            None => deferred.call(),
        }
    }

    /// Flushes this thread's deferred items to the global queue and runs a
    /// collection cycle.
    pub fn flush(&self) {
        if let Some(local) = &self.local {
            local.flush();
        }
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if let Some(local) = &self.local {
            local.unpin();
        }
    }
}

impl fmt::Debug for Guard {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Guard")
            .field("pinned", &self.local.is_some())
            .finish()
    }
}

pub(crate) fn default_collector() -> &'static Collector {
    static DEFAULT: OnceLock<Collector> = OnceLock::new();
    DEFAULT.get_or_init(Collector::new)
}

thread_local! {
    static LOCAL_HANDLE: LocalHandle = default_collector().register();
}

/// Pins the current thread to the default collector's epoch.
///
/// This is the entry point the data structure crates use on every
/// operation. The first call on a thread registers it with the process-wide
/// default collector; subsequent calls are cheap (no locks, one fence).
pub fn pin() -> Guard {
    LOCAL_HANDLE.with(|h| h.pin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_atomic::{AtomicUsize, Ordering};

    /// A payload that counts drops, for leak/double-free detection.
    struct DropCounter(Arc<AtomicUsize>);

    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn pin_is_reentrant() {
        let g1 = pin();
        let g2 = pin();
        drop(g1);
        drop(g2);
    }

    #[test]
    fn deferred_runs_after_two_advances() {
        let collector = Collector::new();
        let handle = collector.register();
        let drops = Arc::new(AtomicUsize::new(0));

        let guard = handle.pin();
        let node = Owned::new(DropCounter(Arc::clone(&drops))).into_shared(&guard);
        unsafe { guard.defer_destroy(node) };
        assert_eq!(drops.load(Ordering::SeqCst), 0);
        drop(guard);

        // With no pinned participants, a few collect cycles advance the
        // epoch far enough to free the item.
        for _ in 0..4 {
            collector.collect();
        }
        // Flush the local bag first: items may still be thread-local.
        let guard = handle.pin();
        guard.flush();
        drop(guard);
        for _ in 0..4 {
            collector.collect();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pinned_thread_blocks_reclamation() {
        let collector = Collector::new();
        let h1 = collector.register();
        let h2 = collector.register();
        let drops = Arc::new(AtomicUsize::new(0));

        // h2 pins and stays pinned.
        let blocker = h2.pin();

        let guard = h1.pin();
        let node = Owned::new(DropCounter(Arc::clone(&drops))).into_shared(&guard);
        unsafe { guard.defer_destroy(node) };
        guard.flush();
        drop(guard);

        let e_before = collector.epoch();
        for _ in 0..8 {
            collector.collect();
        }
        // The epoch may advance at most once past the blocker's pin epoch.
        assert!(collector.epoch().wrapping_sub(e_before) <= 1);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "item freed while a thread was still pinned"
        );

        drop(blocker);
        for _ in 0..4 {
            collector.collect();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn unprotected_guard_destroys_immediately() {
        let drops = Arc::new(AtomicUsize::new(0));
        // SAFETY: no other thread is involved.
        let guard = unsafe { Guard::unprotected() };
        let node = Owned::new(DropCounter(Arc::clone(&drops))).into_shared(&guard);
        unsafe { guard.defer_destroy(node) };
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn dropping_collector_frees_outstanding_garbage() {
        let drops = Arc::new(AtomicUsize::new(0));
        {
            let collector = Collector::new();
            let handle = collector.register();
            let guard = handle.pin();
            for _ in 0..10 {
                let node = Owned::new(DropCounter(Arc::clone(&drops))).into_shared(&guard);
                unsafe { guard.defer_destroy(node) };
            }
            guard.flush();
            drop(guard);
            drop(handle);
            drop(collector);
        }
        assert_eq!(drops.load(Ordering::SeqCst), 10);
    }

    #[test]
    fn many_threads_defer_concurrently() {
        let drops = Arc::new(AtomicUsize::new(0));
        let collector = Collector::new();
        const THREADS: usize = 4;
        const PER_THREAD: usize = 1000;

        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let collector = collector.clone();
                let drops = Arc::clone(&drops);
                std::thread::spawn(move || {
                    let handle = collector.register();
                    for _ in 0..PER_THREAD {
                        let guard = handle.pin();
                        let node = Owned::new(DropCounter(Arc::clone(&drops))).into_shared(&guard);
                        unsafe { guard.defer_destroy(node) };
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        drop(collector);
        assert_eq!(drops.load(Ordering::SeqCst), THREADS * PER_THREAD);
    }

    #[test]
    fn epoch_advances_when_quiescent() {
        let collector = Collector::new();
        let before = collector.epoch();
        for _ in 0..3 {
            collector.collect();
        }
        assert!(collector.epoch().wrapping_sub(before) >= 1);
    }
}

//! Safe memory reclamation for lock-free data structures.
//!
//! Lock-free algorithms unlink nodes while other threads may still be
//! traversing them. In a garbage-collected language the collector keeps such
//! nodes alive; in Rust the library must provide the equivalent guarantee.
//! This crate implements, from scratch, the two standard schemes:
//!
//! * [`epoch`] — **epoch-based reclamation** (EBR). Threads *pin* the
//!   current epoch before touching shared nodes and defer destruction of
//!   unlinked nodes; a node is freed only after every pinned thread has
//!   moved past the epoch in which it was unlinked. Per-operation cost is a
//!   couple of unsynchronized loads plus one fence — the cheapest known
//!   scheme for read-heavy structures — at the price of unbounded garbage
//!   if a thread stalls while pinned.
//!
//! * [`hazard`] — **hazard pointers** (Michael). Each thread publishes the
//!   specific pointers it is about to dereference; retired nodes are freed
//!   only when no published hazard matches them. Bounded garbage even under
//!   thread stalls, at the price of a store + fence per protected pointer.
//!
//! The trade-off between the two is measured head-to-head by experiment
//! E10 of the benchmark suite (`cargo bench -p cds-bench --bench reclaim`).
//!
//! # Which one should a data structure use?
//!
//! The lock-free structures in this family default to [`epoch`] (as do
//! crossbeam and java.util.concurrent's analogous designs); the
//! hazard-pointer variant of the Treiber stack (`cds-stack`) exists to
//! exercise and compare the [`hazard`] API.
//!
//! # Example
//!
//! ```
//! use cds_reclaim::epoch::{self, Atomic, Owned};
//! use std::sync::atomic::Ordering;
//!
//! let slot: Atomic<i32> = Atomic::new(1);
//! let guard = epoch::pin();
//! let old = slot.swap(Owned::new(2).into_shared(&guard), Ordering::AcqRel, &guard);
//! // `old` may still be read by concurrent threads: defer its destruction.
//! unsafe {
//!     assert_eq!(*old.deref(), 1);
//!     guard.defer_destroy(old);
//! }
//! drop(guard);
//! # unsafe { drop(slot.into_owned()); }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod epoch;
pub mod hazard;

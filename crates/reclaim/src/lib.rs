//! Safe memory reclamation for lock-free data structures.
//!
//! Lock-free algorithms unlink nodes while other threads may still be
//! traversing them. In a garbage-collected language the collector keeps such
//! nodes alive; in Rust the library must provide the equivalent guarantee.
//! This crate implements, from scratch, the two standard schemes:
//!
//! * [`epoch`] — **epoch-based reclamation** (EBR). Threads *pin* the
//!   current epoch before touching shared nodes and defer destruction of
//!   unlinked nodes; a node is freed only after every pinned thread has
//!   moved past the epoch in which it was unlinked. Per-operation cost is a
//!   couple of unsynchronized loads plus one fence — the cheapest known
//!   scheme for read-heavy structures — at the price of unbounded garbage
//!   if a thread stalls while pinned.
//!
//! * [`hazard`] — **hazard pointers** (Michael). Each thread publishes the
//!   specific pointers it is about to dereference; retired nodes are freed
//!   only when no published hazard matches them. Bounded garbage even under
//!   thread stalls, at the price of a store + fence per protected pointer.
//!
//! The trade-off between the two is measured head-to-head by experiment
//! E10 of the benchmark suite (`cargo bench -p cds-bench --bench reclaim`).
//!
//! # The backend-generic interface
//!
//! Structures do not pick a scheme; they are generic over the
//! [`Reclaimer`] trait (default [`Ebr`]), so one implementation compiles
//! against four backends:
//!
//! * [`Ebr`] — epoch pins from the process-wide default collector.
//! * [`Hazard`] — hazard pointers (per-pointer publish-validate) plus
//!   hazard *eras* for traversal structures, on a process-wide [`hazard::Domain`].
//! * [`Leak`] — `retire` leaks; the reclamation-cost floor for E10.
//! * [`DebugReclaim`] — a checker that quarantines retired nodes and
//!   panics with thread ids on use-after-retire or double retire.
//!
//! # Example
//!
//! ```
//! use cds_reclaim::epoch::{self, Atomic, Owned};
//! use cds_atomic::Ordering;
//!
//! let slot: Atomic<i32> = Atomic::new(1);
//! let guard = epoch::pin();
//! let old = slot.swap(Owned::new(2).into_shared(&guard), Ordering::AcqRel, &guard);
//! // `old` may still be read by concurrent threads: defer its destruction.
//! unsafe {
//!     assert_eq!(*old.deref(), 1);
//!     guard.defer_destroy(old);
//! }
//! drop(guard);
//! # unsafe { drop(slot.into_owned()); }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod epoch;
pub mod hazard;
mod reclaimer;

pub use reclaimer::{
    DebugGuard, DebugReclaim, Ebr, Hazard, HazardGuard, Leak, LeakGuard, ReclaimGuard, Reclaimer,
};

use std::fmt;

use cds_core::ConcurrentSet;
use parking_lot::Mutex;

use crate::SeqSkipList;

/// A sequential skiplist behind one mutex: the coarse baseline of
/// experiment E6.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentSet;
/// use cds_skiplist::CoarseSkipList;
///
/// let s = CoarseSkipList::new();
/// s.insert(10);
/// assert!(s.contains(&10));
/// ```
pub struct CoarseSkipList<T> {
    inner: Mutex<SeqSkipList<T>>,
}

impl<T: Ord> CoarseSkipList<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        CoarseSkipList {
            inner: Mutex::new(SeqSkipList::new()),
        }
    }

    /// Removes and returns the smallest key (used by the priority-queue
    /// baseline).
    pub fn pop_min(&self) -> Option<T> {
        self.inner.lock().pop_min()
    }
}

impl<T: Ord> Default for CoarseSkipList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Send> ConcurrentSet<T> for CoarseSkipList<T> {
    const NAME: &'static str = "coarse";

    fn insert(&self, value: T) -> bool {
        self.inner.lock().insert(value)
    }

    fn remove(&self, value: &T) -> bool {
        self.inner.lock().remove(value)
    }

    fn contains(&self, value: &T) -> bool {
        self.inner.lock().contains(value)
    }

    fn len(&self) -> usize {
        self.inner.lock().len()
    }
}

impl<T> fmt::Debug for CoarseSkipList<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoarseSkipList").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentSet;

    #[test]
    fn pop_min_via_lock() {
        let s = CoarseSkipList::new();
        s.insert(3);
        s.insert(1);
        assert_eq!(s.pop_min(), Some(1));
        assert_eq!(s.pop_min(), Some(3));
        assert_eq!(s.pop_min(), None);
    }
}

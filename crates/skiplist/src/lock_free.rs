use cds_atomic::Ordering;
use std::cmp::Ordering as CmpOrdering;
use std::fmt;

use cds_core::{Bound, ConcurrentSet};
use cds_reclaim::epoch::{Atomic, Guard, Owned, Shared};
use cds_reclaim::{Ebr, ReclaimGuard, Reclaimer};
use cds_sync::Backoff;

use crate::level::random_level;
use crate::HEIGHT;

/// Per-level logical-deletion mark (tag bit of that level's `next`).
const MARK: usize = 1;

struct Node<T> {
    key: Bound<T>,
    /// Tower of forward pointers; the tag bit of `next[l]` marks the node
    /// as deleted *at that level*.
    next: Vec<Atomic<Node<T>>>,
}

impl<T> Node<T> {
    fn top_level(&self) -> usize {
        self.next.len() - 1
    }
}

/// The **lock-free skiplist** (Fraser 2004, as presented by Herlihy &
/// Shavit ch. 14).
///
/// CAS-only: the deletion mark lives in the tag bit of each level's `next`
/// pointer, and every traversal *helps* by physically unlinking marked
/// nodes it passes. The bottom level is authoritative — a node is in the
/// set iff it is linked and unmarked at level 0; upper levels are mere
/// shortcuts, linked best-effort after the bottom-level CAS.
///
/// ## Reclamation
///
/// The skiplist is generic over its reclamation backend `R`
/// ([`cds_reclaim::Reclaimer`], default [`Ebr`]) and uses the **blanket**
/// protection mode ([`Reclaimer::enter_blanket`]) — the per-level restart
/// loops traverse marked towers no fixed hazard set can cover. A node is
/// handed to the reclaimer by the thread whose CAS unlinks it at
/// **level 0**. This is safe because any traversal that reaches the
/// node's position at level 0 necessarily scanned (and snipped it from)
/// every higher level of its tower first — once a level's unlink CAS
/// succeeds the node can never be re-linked there — so the level-0
/// unlinker observes a node that is already globally unreachable.
///
/// Also provides [`remove_min`](LockFreeSkipList::remove_min): the
/// Lotan–Shavit priority-queue operation used by `cds-prio`.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentSet;
/// use cds_skiplist::LockFreeSkipList;
///
/// let s = LockFreeSkipList::new();
/// s.insert(2);
/// s.insert(9);
/// assert_eq!(s.remove_min(), Some(2));
/// ```
pub struct LockFreeSkipList<T, R: Reclaimer = Ebr> {
    head: Atomic<Node<T>>,
    _reclaimer: std::marker::PhantomData<R>,
}

// SAFETY: reclaimer-managed nodes; all mutation is CAS-based.
unsafe impl<T: Send + Sync, R: Reclaimer> Send for LockFreeSkipList<T, R> {}
unsafe impl<T: Send + Sync, R: Reclaimer> Sync for LockFreeSkipList<T, R> {}

type FindResult<'g, T> = (
    bool,
    [Shared<'g, Node<T>>; HEIGHT],
    [Shared<'g, Node<T>>; HEIGHT],
);

impl<T: Ord> LockFreeSkipList<T> {
    /// Creates an empty set on the default ([`Ebr`]) backend.
    pub fn new() -> Self {
        Self::with_reclaimer()
    }
}

impl<T: Ord, R: Reclaimer> LockFreeSkipList<T, R> {
    /// Creates an empty set on the reclamation backend `R`.
    pub fn with_reclaimer() -> Self {
        LockFreeSkipList {
            head: Atomic::new(Node {
                key: Bound::NegInf,
                next: (0..HEIGHT).map(|_| Atomic::null()).collect(),
            }),
            _reclaimer: std::marker::PhantomData,
        }
    }

    /// Fraser's `find`: descends the tower recording predecessors and
    /// successors per level, snipping every marked node encountered.
    /// The thread whose CAS removes a node at level 0 retires it (see the
    /// type-level reclamation argument).
    fn find<'g, G: ReclaimGuard>(&self, key: &T, guard: &'g G) -> FindResult<'g, T> {
        'retry: loop {
            cds_core::stress::yield_point();
            let mut preds = [Shared::null(); HEIGHT];
            let mut succs = [Shared::null(); HEIGHT];
            let mut pred = self.head.load(Ordering::Acquire, guard);
            for l in (0..HEIGHT).rev() {
                // SAFETY: pinned; `pred` is the head or an unmarked node we
                // traversed to.
                let mut curr = unsafe { pred.deref() }.next[l]
                    .load(Ordering::Acquire, guard)
                    .with_tag(0);
                loop {
                    cds_core::stress::yield_point();
                    let curr_ref = match unsafe { curr.as_ref() } {
                        None => break, // level exhausted
                        Some(c) => c,
                    };
                    let next = curr_ref.next[l].load(Ordering::Acquire, guard);
                    if next.tag() == MARK {
                        // curr is deleted at this level: snip it.
                        let snipped = unsafe { pred.deref() }.next[l]
                            .compare_exchange(
                                curr.with_tag(0),
                                next.with_tag(0),
                                Ordering::AcqRel,
                                Ordering::Relaxed,
                                guard,
                            )
                            .is_ok();
                        cds_obs::cas_outcome(snipped);
                        if snipped {
                            if l == 0 {
                                // SAFETY: see type-level docs — at level
                                // 0 the node is globally unreachable.
                                unsafe { guard.retire(curr) };
                            }
                            curr = next.with_tag(0);
                        } else {
                            cds_obs::count(cds_obs::Event::SkiplistRetry);
                            continue 'retry;
                        }
                    } else if curr_ref.key.cmp_key(key) == CmpOrdering::Less {
                        pred = curr;
                        curr = next.with_tag(0);
                    } else {
                        break;
                    }
                }
                preds[l] = pred;
                succs[l] = curr;
            }
            let found = match unsafe { succs[0].as_ref() } {
                Some(c) => c.key.cmp_key(key) == CmpOrdering::Equal,
                None => false,
            };
            return (found, preds, succs);
        }
    }

    /// Removes and returns the smallest key (Lotan & Shavit, 2000).
    ///
    /// Walks the bottom level, claiming the first unmarked node by marking
    /// its tower (top-down, bottom last — the bottom CAS is the
    /// linearization point), then calls `find` to physically
    /// unlink it.
    pub fn remove_min(&self) -> Option<T>
    where
        T: Clone,
    {
        let guard = R::enter_blanket();
        // SAFETY: pinned; head never freed.
        let head = self.head.load(Ordering::Acquire, &guard);
        let mut curr = unsafe { head.deref() }.next[0]
            .load(Ordering::Acquire, &guard)
            .with_tag(0);
        loop {
            cds_core::stress::yield_point();
            let curr_ref = unsafe { curr.as_ref() }?;
            // Mark upper levels top-down.
            for l in (1..=curr_ref.top_level()).rev() {
                loop {
                    cds_core::stress::yield_point();
                    let next = curr_ref.next[l].load(Ordering::Acquire, &guard);
                    if next.tag() == MARK {
                        break;
                    }
                    let marked = curr_ref.next[l]
                        .compare_exchange(
                            next,
                            next.with_tag(MARK),
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                            &guard,
                        )
                        .is_ok();
                    cds_obs::cas_outcome(marked);
                    if marked {
                        break;
                    }
                    cds_obs::count(cds_obs::Event::SkiplistRetry);
                }
            }
            // Claim the bottom level.
            let next = curr_ref.next[0].load(Ordering::Acquire, &guard);
            if next.tag() == MARK {
                // Someone else claimed it; move on.
                curr = next.with_tag(0);
                continue;
            }
            let claimed = curr_ref.next[0]
                .compare_exchange(
                    next,
                    next.with_tag(MARK),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                    &guard,
                )
                .is_ok();
            cds_obs::cas_outcome(claimed);
            if claimed {
                let key = curr_ref
                    .key
                    .finite()
                    .expect("non-sentinel node has a finite key")
                    .clone();
                // Physically unlink (and retire, at level 0) via find.
                let _ = self.find(&key, &guard);
                return Some(key);
            }
            // Bottom CAS failed: either claimed or a node was inserted
            // right after curr; re-examine curr.
            cds_obs::count(cds_obs::Event::SkiplistRetry);
        }
    }

    /// An ascending snapshot of the set's keys.
    ///
    /// The snapshot is *quiescently consistent*: it reflects some state
    /// consistent with the operations that completed before the call and
    /// may miss or include elements whose insertion/removal overlaps it.
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        let guard = R::enter_blanket();
        let mut out = Vec::new();
        // SAFETY: pinned.
        let head = self.head.load(Ordering::Acquire, &guard);
        let mut curr = unsafe { head.deref() }.next[0]
            .load(Ordering::Acquire, &guard)
            .with_tag(0);
        while let Some(c) = unsafe { curr.as_ref() } {
            let next = c.next[0].load(Ordering::Acquire, &guard);
            if next.tag() != MARK {
                if let Some(k) = c.key.finite() {
                    out.push(k.clone());
                }
            }
            curr = next.with_tag(0);
        }
        out
    }

    /// A clone of the smallest key without removing it.
    pub fn min(&self) -> Option<T>
    where
        T: Clone,
    {
        let guard = R::enter_blanket();
        // SAFETY: pinned.
        let head = self.head.load(Ordering::Acquire, &guard);
        let mut curr = unsafe { head.deref() }.next[0]
            .load(Ordering::Acquire, &guard)
            .with_tag(0);
        while let Some(c) = unsafe { curr.as_ref() } {
            let next = c.next[0].load(Ordering::Acquire, &guard);
            if next.tag() != MARK {
                return c.key.finite().cloned();
            }
            curr = next.with_tag(0);
        }
        None
    }
}

impl<T: Ord, R: Reclaimer> Default for LockFreeSkipList<T, R> {
    fn default() -> Self {
        Self::with_reclaimer()
    }
}

impl<T: Ord + Send + Sync, R: Reclaimer> ConcurrentSet<T> for LockFreeSkipList<T, R> {
    const NAME: &'static str = "lock-free";

    fn insert(&self, value: T) -> bool {
        let guard = R::enter_blanket();
        let backoff = Backoff::new();
        let top = random_level();
        let mut node = Owned::new(Node {
            key: Bound::Finite(value),
            next: (0..=top).map(|_| Atomic::null()).collect(),
        });
        // Link at level 0 first (the linearization point).
        let node_shared = loop {
            cds_core::stress::yield_point();
            let key = node.key.finite().expect("finite by construction");
            let (found, preds, succs) = self.find(key, &guard);
            if found {
                drop(node);
                return false;
            }
            #[allow(clippy::needless_range_loop)] // lockstep over next/succs
            for l in 0..=top {
                node.next[l].store(succs[l], Ordering::Relaxed);
            }
            let staged = node.into_shared(&guard);
            // SAFETY: pinned.
            match unsafe { preds[0].deref() }.next[0].compare_exchange(
                succs[0],
                staged,
                Ordering::AcqRel,
                Ordering::Relaxed,
                &guard,
            ) {
                Ok(_) => {
                    cds_obs::cas_outcome(true);
                    break staged;
                }
                Err(_) => {
                    cds_obs::cas_outcome(false);
                    cds_obs::count(cds_obs::Event::SkiplistRetry);
                    // SAFETY: unpublished.
                    node = unsafe { staged.into_owned() };
                    backoff.spin();
                }
            }
        };

        // Best-effort linking of the upper levels.
        // SAFETY: pinned; the node is published now.
        let node_ref = unsafe { node_shared.deref() };
        let key_ref = node_ref.key.finite().expect("finite");
        let (_, mut preds, mut succs) = self.find(key_ref, &guard);
        'levels: for l in 1..=top {
            loop {
                cds_core::stress::yield_point();
                let cur_next = node_ref.next[l].load(Ordering::Acquire, &guard);
                if cur_next.tag() == MARK {
                    // Concurrently deleted; the deleter owns cleanup.
                    break 'levels;
                }
                let succ = succs[l];
                if succ != cur_next {
                    // Refresh our forward pointer before exposing the level.
                    let refreshed = node_ref.next[l]
                        .compare_exchange(
                            cur_next,
                            succ,
                            Ordering::AcqRel,
                            Ordering::Relaxed,
                            &guard,
                        )
                        .is_ok();
                    cds_obs::cas_outcome(refreshed);
                    if !refreshed {
                        cds_obs::count(cds_obs::Event::SkiplistRetry);
                        continue; // re-examine (possibly marked now)
                    }
                }
                if succ.as_raw() == node_shared.as_raw() {
                    // find() already sees us at this level (a helper linked
                    // it); nothing to do.
                    break;
                }
                // SAFETY: pinned.
                let linked = unsafe { preds[l].deref() }.next[l]
                    .compare_exchange(
                        succ,
                        node_shared,
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                        &guard,
                    )
                    .is_ok();
                cds_obs::cas_outcome(linked);
                if linked {
                    break; // level linked
                }
                cds_obs::count(cds_obs::Event::SkiplistRetry);
                // Stale view: recompute and retry this level.
                let (found, p, s) = self.find(key_ref, &guard);
                if !found {
                    // The node has been removed (and unlinked) already.
                    break 'levels;
                }
                preds = p;
                succs = s;
            }
        }
        true
    }

    fn remove(&self, value: &T) -> bool {
        let guard = R::enter_blanket();
        let (found, _preds, succs) = self.find(value, &guard);
        if !found {
            return false;
        }
        let victim = succs[0];
        // SAFETY: pinned; found unmarked at level 0.
        let victim_ref = unsafe { victim.deref() };
        // Mark upper levels top-down.
        for l in (1..=victim_ref.top_level()).rev() {
            loop {
                cds_core::stress::yield_point();
                let next = victim_ref.next[l].load(Ordering::Acquire, &guard);
                if next.tag() == MARK {
                    break;
                }
                let marked = victim_ref.next[l]
                    .compare_exchange(
                        next,
                        next.with_tag(MARK),
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                        &guard,
                    )
                    .is_ok();
                cds_obs::cas_outcome(marked);
                if marked {
                    break;
                }
                cds_obs::count(cds_obs::Event::SkiplistRetry);
            }
        }
        // Bottom level decides the winner.
        let backoff = Backoff::new();
        loop {
            cds_core::stress::yield_point();
            let next = victim_ref.next[0].load(Ordering::Acquire, &guard);
            if next.tag() == MARK {
                return false; // another remover won
            }
            let won = victim_ref.next[0]
                .compare_exchange(
                    next,
                    next.with_tag(MARK),
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                    &guard,
                )
                .is_ok();
            cds_obs::cas_outcome(won);
            if won {
                // Physically unlink everywhere (level-0 snipper retires it).
                let _ = self.find(value, &guard);
                return true;
            }
            cds_obs::count(cds_obs::Event::SkiplistRetry);
            backoff.spin();
        }
    }

    fn contains(&self, value: &T) -> bool {
        // Read-only descent: skip marked nodes without snipping.
        let guard = R::enter_blanket();
        let mut pred = self.head.load(Ordering::Acquire, &guard);
        for l in (0..HEIGHT).rev() {
            // SAFETY: pinned.
            let mut curr = unsafe { pred.deref() }.next[l]
                .load(Ordering::Acquire, &guard)
                .with_tag(0);
            loop {
                cds_core::stress::yield_point();
                let curr_ref = match unsafe { curr.as_ref() } {
                    None => break,
                    Some(c) => c,
                };
                let next = curr_ref.next[l].load(Ordering::Acquire, &guard);
                if next.tag() == MARK {
                    curr = next.with_tag(0);
                    continue;
                }
                match curr_ref.key.cmp_key(value) {
                    CmpOrdering::Less => {
                        pred = curr;
                        curr = next.with_tag(0);
                    }
                    CmpOrdering::Equal => return true,
                    CmpOrdering::Greater => break,
                }
            }
        }
        false
    }

    fn len(&self) -> usize {
        let guard = R::enter_blanket();
        let mut n = 0;
        // SAFETY: pinned.
        let head = self.head.load(Ordering::Acquire, &guard);
        let mut curr = unsafe { head.deref() }.next[0]
            .load(Ordering::Acquire, &guard)
            .with_tag(0);
        while let Some(c) = unsafe { curr.as_ref() } {
            let next = c.next[0].load(Ordering::Acquire, &guard);
            if next.tag() != MARK {
                n += 1;
            }
            curr = next.with_tag(0);
        }
        n
    }
}

impl<T, R: Reclaimer> Drop for LockFreeSkipList<T, R> {
    fn drop(&mut self) {
        // SAFETY: unique access; the bottom level reaches every node
        // (including marked-but-unlinked ones, which are still chained).
        // The unprotected guard is a pure load witness on every backend;
        // level-0-snipped nodes were retired through `R` and are freed by
        // the backend, not here.
        let guard = unsafe { Guard::unprotected() };
        let head = self.head.load(Ordering::Relaxed, &guard);
        // SAFETY: unique ownership.
        let mut cur = unsafe { head.deref() }.next[0]
            .load(Ordering::Relaxed, &guard)
            .with_tag(0);
        unsafe {
            drop(head.into_owned());
            while !cur.is_null() {
                let boxed = cur.into_owned().into_box();
                cur = boxed.next[0].load(Ordering::Relaxed, &guard).with_tag(0);
            }
        }
    }
}

impl<T, R: Reclaimer> fmt::Debug for LockFreeSkipList<T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockFreeSkipList")
            .field("reclaimer", &R::NAME)
            .finish_non_exhaustive()
    }
}

impl<T: Ord + Send + Sync> FromIterator<T> for LockFreeSkipList<T> {
    /// Collects into a set (duplicates are dropped).
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let set = LockFreeSkipList::new();
        for v in iter {
            set.insert(v);
        }
        set
    }
}

impl<T: Ord + Send + Sync, R: Reclaimer> Extend<T> for LockFreeSkipList<T, R> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for v in iter {
            self.insert(v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentSet;
    use std::sync::Arc;

    #[test]
    fn remove_min_drains_in_order() {
        let s = LockFreeSkipList::new();
        for k in [5, 1, 9, 3, 7] {
            s.insert(k);
        }
        assert_eq!(s.min(), Some(1));
        let mut out = Vec::new();
        while let Some(k) = s.remove_min() {
            out.push(k);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
        assert!(s.is_empty());
    }

    #[test]
    fn to_vec_is_sorted_and_complete() {
        let s = LockFreeSkipList::new();
        for k in [9, 2, 7, 4, 1] {
            s.insert(k);
        }
        s.remove(&7);
        assert_eq!(s.to_vec(), vec![1, 2, 4, 9]);
    }

    #[test]
    fn set_and_remove_min_on_every_backend() {
        fn run<R: Reclaimer>() {
            let s: LockFreeSkipList<i64, R> = LockFreeSkipList::with_reclaimer();
            for k in 0..128 {
                assert!(s.insert(k), "{} backend", R::NAME);
            }
            for k in (0..128).step_by(2) {
                assert!(s.remove(&k), "{} backend", R::NAME);
            }
            assert_eq!(s.remove_min(), Some(1), "{} backend", R::NAME);
            for k in 0..128 {
                assert_eq!(s.contains(&k), k % 2 == 1 && k != 1, "{} backend", R::NAME);
            }
            R::collect();
        }
        run::<Ebr>();
        run::<cds_reclaim::Hazard>();
        run::<cds_reclaim::Leak>();
        run::<cds_reclaim::DebugReclaim>();
    }

    #[test]
    fn concurrent_remove_min_yields_distinct_keys() {
        let s = Arc::new(LockFreeSkipList::new());
        const N: i64 = 2_000;
        for k in 0..N {
            s.insert(k);
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(k) = s.remove_min() {
                        got.push(k);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<i64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        let want: Vec<i64> = (0..N).collect();
        assert_eq!(all, want, "keys lost or duplicated by remove_min");
    }

    #[test]
    fn insert_remove_churn_single_key_range() {
        let s = Arc::new(LockFreeSkipList::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    for i in 0..400i64 {
                        let k = (t as i64 * 7 + i) % 16;
                        s.insert(k);
                        s.remove(&k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let n = s.len();
        let found = (0..16i64).filter(|k| s.contains(k)).count();
        assert_eq!(n, found);
    }
}

use cds_atomic::{AtomicBool, Ordering};
use std::cmp::Ordering as CmpOrdering;
use std::fmt;
use std::ptr;

use cds_core::{Bound, ConcurrentSet};
use cds_reclaim::epoch::{self, Atomic, Guard, Owned, Shared};
use cds_sync::Backoff;
use parking_lot::Mutex;

use crate::level::random_level;
use crate::HEIGHT;

struct Node<T> {
    key: Bound<T>,
    /// Tower of forward pointers; `next.len() == top_level + 1`.
    next: Vec<Atomic<Node<T>>>,
    lock: Mutex<()>,
    /// Logical deletion flag (set under `lock`).
    marked: AtomicBool,
    /// Set once the node is linked at every level of its tower; readers
    /// ignore half-linked nodes.
    fully_linked: AtomicBool,
}

impl<T> Node<T> {
    fn top_level(&self) -> usize {
        self.next.len() - 1
    }
}

/// The **lazy skiplist** (Herlihy, Lev, Luchangco & Shavit, 2007) — the
/// lock-based skiplist used in practice (it is the design behind many
/// production concurrent ordered maps).
///
/// The lazy-list recipe of `cds-list` lifted to towers:
///
/// * every node carries a lock, a `marked` flag (logical deletion) and a
///   `fully_linked` flag (nodes become visible atomically even though
///   their tower is linked level by level);
/// * `insert`/`remove` lock only the affected predecessors, validate with
///   O(1) checks, and retry on conflict;
/// * **`contains` is wait-free** — one unlocked descent.
///
/// Locks are acquired in descending key order along each tower, which
/// rules out deadlock. Removed nodes go to the epoch collector because
/// wait-free readers may still traverse them.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentSet;
/// use cds_skiplist::LazySkipList;
///
/// let s = LazySkipList::new();
/// s.insert(5);
/// assert!(s.contains(&5));
/// assert!(s.remove(&5));
/// ```
pub struct LazySkipList<T> {
    head: Atomic<Node<T>>,
}

// SAFETY: epoch-managed nodes; lock-protected mutation; mark-validated
// reads.
unsafe impl<T: Send + Sync> Send for LazySkipList<T> {}
unsafe impl<T: Send + Sync> Sync for LazySkipList<T> {}

type FindResult<'g, T> = (
    Option<usize>,
    [Shared<'g, Node<T>>; HEIGHT],
    [Shared<'g, Node<T>>; HEIGHT],
);

impl<T: Ord> LazySkipList<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        let tail = Owned::new(Node {
            key: Bound::PosInf,
            next: Vec::new(),
            lock: Mutex::new(()),
            marked: AtomicBool::new(false),
            fully_linked: AtomicBool::new(true),
        });
        let head = Owned::new(Node {
            key: Bound::NegInf,
            next: (0..HEIGHT).map(|_| Atomic::null()).collect(),
            lock: Mutex::new(()),
            marked: AtomicBool::new(false),
            fully_linked: AtomicBool::new(true),
        });
        // SAFETY: not shared yet.
        let guard = unsafe { Guard::unprotected() };
        let tail = tail.into_shared(&guard);
        for l in 0..HEIGHT {
            head.next[l].store(tail, Ordering::Relaxed);
        }
        LazySkipList { head: head.into() }
    }

    /// Unlocked descent recording, per level, the last node with a smaller
    /// key (`preds`) and the first with an equal-or-larger key (`succs`).
    /// Returns the highest level at which the key was found, if any.
    fn find<'g>(&self, key: &T, guard: &'g Guard) -> FindResult<'g, T> {
        let mut preds = [Shared::null(); HEIGHT];
        let mut succs = [Shared::null(); HEIGHT];
        let mut lfound = None;
        let mut pred = self.head.load(Ordering::Acquire, guard);
        for l in (0..HEIGHT).rev() {
            // SAFETY: pinned; nodes are deferred, never freed under us. The
            // tail has an empty tower but is never dereferenced for `next`
            // because its key is PosInf (the loop stops first).
            let mut curr = unsafe { pred.deref() }.next[l].load(Ordering::Acquire, guard);
            loop {
                let curr_ref = unsafe { curr.deref() };
                if curr_ref.key.cmp_key(key) == CmpOrdering::Less {
                    pred = curr;
                    curr = curr_ref.next[l].load(Ordering::Acquire, guard);
                } else {
                    break;
                }
            }
            if lfound.is_none() && unsafe { curr.deref() }.key.cmp_key(key) == CmpOrdering::Equal {
                lfound = Some(l);
            }
            preds[l] = pred;
            succs[l] = curr;
        }
        (lfound, preds, succs)
    }
}

impl<T: Ord> Default for LazySkipList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Send + Sync> ConcurrentSet<T> for LazySkipList<T> {
    const NAME: &'static str = "lazy";

    fn insert(&self, value: T) -> bool {
        let guard = epoch::pin();
        let top = random_level();
        let mut value_slot = Some(value);
        let backoff = Backoff::new();
        loop {
            cds_core::stress::yield_point();
            let key = value_slot.as_ref().expect("value present until success");
            let (lfound, preds, succs) = self.find(key, &guard);
            if let Some(l) = lfound {
                // SAFETY: pinned.
                let node = unsafe { succs[l].deref() };
                if !node.marked.load(Ordering::Acquire) {
                    // Present (or being inserted): wait until visible, fail.
                    while !node.fully_linked.load(Ordering::Acquire) {
                        // Yield first: under the stress scheduler this wait
                        // depends on the linking thread getting to run.
                        cds_core::stress::yield_point();
                        backoff.snooze();
                    }
                    return false;
                }
                // Marked: a removal is mid-flight; retry.
                backoff.spin();
                continue;
            }

            // Lock predecessors bottom-up (descending key order), skipping
            // duplicates, and validate.
            let mut guards = Vec::with_capacity(top + 1);
            let mut last: *mut Node<T> = ptr::null_mut();
            let mut valid = true;
            for l in 0..=top {
                let pred = preds[l];
                let succ = succs[l];
                // SAFETY: pinned.
                let pred_ref = unsafe { pred.deref() };
                if pred.as_raw() != last {
                    guards.push(pred_ref.lock.lock());
                    last = pred.as_raw();
                }
                let succ_ref = unsafe { succ.deref() };
                if pred_ref.marked.load(Ordering::Acquire)
                    || succ_ref.marked.load(Ordering::Acquire)
                    || pred_ref.next[l].load(Ordering::Acquire, &guard) != succ
                {
                    valid = false;
                    break;
                }
            }
            if !valid {
                drop(guards);
                backoff.spin();
                continue;
            }

            let node = Owned::new(Node {
                key: Bound::Finite(value_slot.take().expect("value still present")),
                next: (0..=top).map(|_| Atomic::null()).collect(),
                lock: Mutex::new(()),
                marked: AtomicBool::new(false),
                fully_linked: AtomicBool::new(false),
            });
            #[allow(clippy::needless_range_loop)] // lockstep over next/succs
            for l in 0..=top {
                node.next[l].store(succs[l], Ordering::Relaxed);
            }
            let node = node.into_shared(&guard);
            // Link bottom-up under the predecessor locks.
            #[allow(clippy::needless_range_loop)]
            for l in 0..=top {
                // SAFETY: pinned; preds validated and locked.
                unsafe { preds[l].deref() }.next[l].store(node, Ordering::Release);
            }
            // SAFETY: pinned.
            unsafe { node.deref() }
                .fully_linked
                .store(true, Ordering::Release);
            return true;
        }
    }

    fn remove(&self, value: &T) -> bool {
        let guard = epoch::pin();
        let backoff = Backoff::new();
        let mut victim: Shared<'_, Node<T>> = Shared::null();
        let mut victim_guard = None;
        let mut is_marked = false;
        let mut top = 0;
        loop {
            cds_core::stress::yield_point();
            let (lfound, preds, succs) = self.find(value, &guard);
            if !is_marked {
                let l = match lfound {
                    None => return false,
                    Some(l) => l,
                };
                let v = succs[l];
                // SAFETY: pinned.
                let v_ref = unsafe { v.deref() };
                // "Ok to delete": visible, found at its own top level,
                // not already claimed by another remover.
                if !(v_ref.fully_linked.load(Ordering::Acquire)
                    && v_ref.top_level() == l
                    && !v_ref.marked.load(Ordering::Acquire))
                {
                    return false;
                }
                let g = v_ref.lock.lock();
                if v_ref.marked.load(Ordering::Acquire) {
                    return false; // another remover claimed it first
                }
                // Claim: logical deletion (the linearization point).
                v_ref.marked.store(true, Ordering::Release);
                victim = v;
                victim_guard = Some(g);
                is_marked = true;
                top = v_ref.top_level();
            }

            // SAFETY: pinned; victim is claimed by us.
            let v_ref = unsafe { victim.deref() };
            let mut guards = Vec::with_capacity(top + 1);
            let mut last: *mut Node<T> = ptr::null_mut();
            let mut valid = true;
            #[allow(clippy::needless_range_loop)] // lockstep over preds/levels
            for l in 0..=top {
                let pred = preds[l];
                let pred_ref = unsafe { pred.deref() };
                if pred.as_raw() != last {
                    guards.push(pred_ref.lock.lock());
                    last = pred.as_raw();
                }
                if pred_ref.marked.load(Ordering::Acquire)
                    || pred_ref.next[l].load(Ordering::Acquire, &guard) != victim
                {
                    valid = false;
                    break;
                }
            }
            if !valid {
                drop(guards);
                backoff.spin();
                continue;
            }

            // Unlink top-down under the locks.
            for l in (0..=top).rev() {
                let succ = v_ref.next[l].load(Ordering::Acquire, &guard);
                // SAFETY: preds validated and locked.
                unsafe { preds[l].deref() }.next[l].store(succ, Ordering::Release);
            }
            drop(guards);
            drop(victim_guard.take());
            // SAFETY: unlinked everywhere; wait-free readers may linger.
            unsafe { guard.defer_destroy(victim) };
            return true;
        }
    }

    fn contains(&self, value: &T) -> bool {
        // Wait-free descent: no locks, no retries.
        let guard = epoch::pin();
        let mut pred = self.head.load(Ordering::Acquire, &guard);
        let mut result = false;
        for l in (0..HEIGHT).rev() {
            // SAFETY: pinned.
            let mut curr = unsafe { pred.deref() }.next[l].load(Ordering::Acquire, &guard);
            loop {
                let curr_ref = unsafe { curr.deref() };
                match curr_ref.key.cmp_key(value) {
                    CmpOrdering::Less => {
                        pred = curr;
                        curr = curr_ref.next[l].load(Ordering::Acquire, &guard);
                    }
                    CmpOrdering::Equal => {
                        result = curr_ref.fully_linked.load(Ordering::Acquire)
                            && !curr_ref.marked.load(Ordering::Acquire);
                        break;
                    }
                    CmpOrdering::Greater => break,
                }
            }
            if result {
                return true;
            }
        }
        result
    }

    fn len(&self) -> usize {
        let guard = epoch::pin();
        let mut n = 0;
        // SAFETY: pinned.
        let mut curr = unsafe { self.head.load(Ordering::Acquire, &guard).deref() }.next[0]
            .load(Ordering::Acquire, &guard);
        loop {
            let curr_ref = unsafe { curr.deref() };
            if matches!(curr_ref.key, Bound::PosInf) {
                return n;
            }
            if curr_ref.fully_linked.load(Ordering::Acquire)
                && !curr_ref.marked.load(Ordering::Acquire)
            {
                n += 1;
            }
            curr = curr_ref.next[0].load(Ordering::Acquire, &guard);
        }
    }
}

impl<T> Drop for LazySkipList<T> {
    fn drop(&mut self) {
        // SAFETY: unique access; walk the bottom level, which reaches every
        // node including the tail.
        let guard = unsafe { Guard::unprotected() };
        let mut cur = self.head.load(Ordering::Relaxed, &guard);
        while !cur.is_null() {
            // SAFETY: unique ownership.
            unsafe {
                let boxed = cur.into_owned().into_box();
                cur = if boxed.next.is_empty() {
                    Shared::null()
                } else {
                    boxed.next[0].load(Ordering::Relaxed, &guard)
                };
            }
        }
    }
}

impl<T> fmt::Debug for LazySkipList<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LazySkipList").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentSet;
    use std::sync::Arc;

    #[test]
    fn towers_link_and_unlink() {
        let s = LazySkipList::new();
        for k in 0..200 {
            assert!(s.insert(k));
        }
        for k in 0..200 {
            assert!(s.contains(&k));
        }
        for k in (0..200).rev() {
            assert!(s.remove(&k));
        }
        assert!(s.is_empty());
    }

    #[test]
    fn concurrent_insert_remove_distinct_ranges() {
        let s = Arc::new(LazySkipList::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let base = t * 1000;
                    for i in 0..250 {
                        assert!(s.insert(base + i));
                    }
                    for i in 0..250 {
                        assert!(s.remove(&(base + i)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(s.is_empty());
    }
}

//! Random tower-height generation shared by all skiplist variants.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};
use std::cell::RefCell;

use crate::HEIGHT;

thread_local! {
    static RNG: RefCell<SmallRng> = RefCell::new(SmallRng::from_entropy());
}

/// Draws a tower top level in `0..HEIGHT` with the geometric distribution
/// `P(level ≥ k) = 2^-k` that gives skiplists their expected O(log n)
/// search paths.
pub(crate) fn random_level() -> usize {
    RNG.with(|rng| {
        let bits = rng.borrow_mut().next_u64();
        // trailing_zeros of uniform bits is geometric(1/2); cap the height.
        (bits.trailing_zeros() as usize).min(HEIGHT - 1)
    })
}

/// Draws a value in `0..n` (used by tests needing shuffles).
#[cfg(test)]
pub(crate) fn random_below(n: usize) -> usize {
    use rand::Rng;
    RNG.with(|rng| rng.borrow_mut().gen_range(0..n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_are_in_range() {
        for _ in 0..10_000 {
            let l = random_level();
            assert!(l < HEIGHT);
        }
    }

    #[test]
    fn distribution_is_roughly_geometric() {
        let mut counts = [0usize; HEIGHT];
        const N: usize = 100_000;
        for _ in 0..N {
            counts[random_level()] += 1;
        }
        // Level 0 should get about half the draws.
        assert!(counts[0] > N / 3 && counts[0] < 2 * N / 3);
        // Higher levels decay: level 4 should be well below level 1.
        assert!(counts[4] < counts[1]);
    }

    #[test]
    fn random_below_is_bounded() {
        for _ in 0..1000 {
            assert!(random_below(7) < 7);
        }
    }
}

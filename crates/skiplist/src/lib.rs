//! Concurrent skiplists.
//!
//! Skiplists (Pugh, 1990) are the concurrency workhorse among ordered
//! structures: unlike balanced trees they need **no rebalancing**, so an
//! update touches only the nodes adjacent to the affected tower — which is
//! why `java.util.concurrent` ships a skiplist map rather than a concurrent
//! red-black tree. Three implementations of [`cds_core::ConcurrentSet`]:
//!
//! * [`CoarseSkipList`] — a textbook sequential skiplist behind one mutex
//!   (the E6 baseline; also the reference model for the randomized tests).
//! * [`LazySkipList`] — the lazy lock-based skiplist of Herlihy, Lev,
//!   Luchangco & Shavit: per-node locks, `marked`/`fully_linked` flags,
//!   wait-free `contains`.
//! * [`LockFreeSkipList`] — the CAS-only skiplist (Fraser's algorithm as
//!   presented by Herlihy & Shavit ch. 14): the deletion mark lives in the
//!   tag bit of each level's `next` pointer, and traversals help unlink.
//!   Also provides [`LockFreeSkipList::remove_min`], the building block of
//!   the Lotan–Shavit priority queue in `cds-prio`.
//!
//! # Example
//!
//! ```
//! use cds_core::ConcurrentSet;
//! use cds_skiplist::LockFreeSkipList;
//!
//! let s = LockFreeSkipList::new();
//! s.insert(3);
//! s.insert(1);
//! assert!(s.contains(&1));
//! assert_eq!(s.remove_min(), Some(1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coarse;
mod lazy;
mod level;
mod lock_free;
mod seq;

pub use coarse::CoarseSkipList;
pub use lazy::LazySkipList;
pub use lock_free::LockFreeSkipList;
pub use seq::SeqSkipList;

/// Maximum tower height used by every skiplist in this crate.
///
/// With the geometric level distribution (p = 1/2), 24 levels comfortably
/// cover sets of up to ~16M elements.
pub const HEIGHT: usize = 24;

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentSet;
    use std::sync::Arc;

    fn set_semantics<S: ConcurrentSet<i64> + Default>() {
        let s = S::default();
        assert!(s.is_empty());
        assert!(!s.remove(&3));
        assert!(s.insert(3));
        assert!(s.insert(-7));
        assert!(s.insert(100));
        assert!(!s.insert(3));
        assert_eq!(s.len(), 3);
        assert!(s.contains(&-7));
        assert!(!s.contains(&4));
        assert!(s.remove(&3));
        assert!(!s.remove(&3));
        assert_eq!(s.len(), 2);
    }

    fn large_ordered_workout<S: ConcurrentSet<i64> + Default>() {
        let s = S::default();
        // Insert in shuffled order so towers get exercised.
        let mut keys: Vec<i64> = (0..2_000).collect();
        let mut x = 0x9e3779b97f4a7c15u64;
        for i in (1..keys.len()).rev() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            keys.swap(i, (x as usize) % (i + 1));
        }
        for &k in &keys {
            assert!(s.insert(k));
        }
        assert_eq!(s.len(), 2_000);
        for k in 0..2_000 {
            assert!(s.contains(&k));
        }
        for k in (0..2_000).step_by(2) {
            assert!(s.remove(&k));
        }
        assert_eq!(s.len(), 1_000);
        for k in 0..2_000 {
            assert_eq!(s.contains(&k), k % 2 == 1);
        }
    }

    fn concurrent_mixed<S: ConcurrentSet<i64> + Default + 'static>() {
        let s = Arc::new(S::default());
        for k in 0..64 {
            s.insert(k);
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut x: u64 = (t + 1) * 0x9e3779b9;
                    for _ in 0..500 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = (x % 128) as i64;
                        match x % 3 {
                            0 => {
                                s.insert(k);
                            }
                            1 => {
                                s.remove(&k);
                            }
                            _ => {
                                s.contains(&k);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let n = s.len();
        let found = (0..128).filter(|k| s.contains(k)).count();
        assert_eq!(n, found, "len disagrees with membership scan");
    }

    #[test]
    fn all_skiplists_have_set_semantics() {
        set_semantics::<CoarseSkipList<i64>>();
        set_semantics::<LazySkipList<i64>>();
        set_semantics::<LockFreeSkipList<i64>>();
    }

    #[test]
    fn all_skiplists_survive_large_workouts() {
        large_ordered_workout::<CoarseSkipList<i64>>();
        large_ordered_workout::<LazySkipList<i64>>();
        large_ordered_workout::<LockFreeSkipList<i64>>();
    }

    #[test]
    fn all_skiplists_survive_concurrent_mixes() {
        concurrent_mixed::<CoarseSkipList<i64>>();
        concurrent_mixed::<LazySkipList<i64>>();
        concurrent_mixed::<LockFreeSkipList<i64>>();
    }
}

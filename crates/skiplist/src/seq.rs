use std::fmt;
use std::ptr;

use crate::level::random_level;
use crate::HEIGHT;

struct Node<T> {
    key: T,
    /// Forward pointers; `forwards.len() == top_level + 1`.
    forwards: Vec<*mut Node<T>>,
}

/// A textbook **sequential** skiplist (Pugh, 1990).
///
/// Not thread-safe by itself; it is the engine inside
/// [`CoarseSkipList`](crate::CoarseSkipList), the single-threaded baseline
/// of experiment E6, and the reference model the randomized tests compare
/// the concurrent variants against.
///
/// # Example
///
/// ```
/// use cds_skiplist::SeqSkipList;
///
/// let mut s = SeqSkipList::new();
/// assert!(s.insert(2));
/// assert!(s.insert(1));
/// assert!(!s.insert(2));
/// assert!(s.contains(&1));
/// assert!(s.remove(&2));
/// assert_eq!(s.len(), 1);
/// ```
pub struct SeqSkipList<T> {
    /// Head tower: `head[l]` is the first node at level `l` (or null).
    head: Vec<*mut Node<T>>,
    len: usize,
}

// SAFETY: `&mut self` on every mutator makes this a plain owned structure;
// sending it between threads moves the whole list.
unsafe impl<T: Send> Send for SeqSkipList<T> {}

impl<T: Ord> SeqSkipList<T> {
    /// Creates an empty skiplist.
    pub fn new() -> Self {
        SeqSkipList {
            head: vec![ptr::null_mut(); HEIGHT],
            len: 0,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the list has no elements.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// For each level, the last tower *strictly before* `key` (null when
    /// the head tower itself is the predecessor).
    fn predecessors(&self, key: &T) -> [*mut Node<T>; HEIGHT] {
        let mut preds: [*mut Node<T>; HEIGHT] = [ptr::null_mut(); HEIGHT];
        let mut pred: *mut Node<T> = ptr::null_mut();
        for l in (0..HEIGHT).rev() {
            // Continue from where the level above stopped.
            let mut curr = if pred.is_null() {
                self.head[l]
            } else {
                // SAFETY: `pred` is a live node of this list.
                unsafe { (&(*pred).forwards)[l] }
            };
            // SAFETY: all traversed pointers are live nodes of this list.
            unsafe {
                while !curr.is_null() && (*curr).key < *key {
                    pred = curr;
                    curr = (&(*curr).forwards)[l];
                }
            }
            preds[l] = pred;
        }
        preds
    }

    fn forward_of(&self, pred: *mut Node<T>, level: usize) -> *mut Node<T> {
        if pred.is_null() {
            self.head[level]
        } else {
            // SAFETY: live node.
            unsafe { (&(*pred).forwards)[level] }
        }
    }

    fn set_forward(&mut self, pred: *mut Node<T>, level: usize, to: *mut Node<T>) {
        if pred.is_null() {
            self.head[level] = to;
        } else {
            // SAFETY: live node, `&mut self`.
            unsafe { (&mut (*pred).forwards)[level] = to };
        }
    }

    /// Inserts `key`; returns `false` if already present.
    pub fn insert(&mut self, key: T) -> bool {
        let preds = self.predecessors(&key);
        let at = self.forward_of(preds[0], 0);
        // SAFETY: live node.
        if !at.is_null() && unsafe { &(*at).key } == &key {
            return false;
        }
        let top = random_level();
        let node = Box::into_raw(Box::new(Node {
            key,
            forwards: vec![ptr::null_mut(); top + 1],
        }));
        #[allow(clippy::needless_range_loop)] // lockstep over preds/levels
        for l in 0..=top {
            let succ = self.forward_of(preds[l], l);
            // SAFETY: node is fresh and unaliased.
            unsafe { (&mut (*node).forwards)[l] = succ };
            self.set_forward(preds[l], l, node);
        }
        self.len += 1;
        true
    }

    /// Removes `key`; returns `false` if absent.
    pub fn remove(&mut self, key: &T) -> bool {
        let preds = self.predecessors(key);
        let victim = self.forward_of(preds[0], 0);
        // SAFETY: live node.
        if victim.is_null() || unsafe { &(*victim).key } != key {
            return false;
        }
        // SAFETY: victim is live; unlink it at every level it occupies.
        let top = unsafe { (*victim).forwards.len() - 1 };
        #[allow(clippy::needless_range_loop)] // lockstep over preds/levels
        for l in 0..=top {
            if self.forward_of(preds[l], l) == victim {
                let succ = unsafe { (&(*victim).forwards)[l] };
                self.set_forward(preds[l], l, succ);
            }
        }
        // SAFETY: fully unlinked and single-threaded: free now.
        unsafe { drop(Box::from_raw(victim)) };
        self.len -= 1;
        true
    }

    /// Membership test.
    pub fn contains(&self, key: &T) -> bool {
        let preds = self.predecessors(key);
        let at = self.forward_of(preds[0], 0);
        // SAFETY: live node.
        !at.is_null() && unsafe { &(*at).key } == key
    }

    /// Removes and returns the smallest key.
    pub fn pop_min(&mut self) -> Option<T> {
        let first = self.head[0];
        if first.is_null() {
            return None;
        }
        // SAFETY: live node; unlink the head tower at every level.
        unsafe {
            let top = (*first).forwards.len() - 1;
            for l in 0..=top {
                if self.head[l] == first {
                    self.head[l] = (&(*first).forwards)[l];
                }
            }
            self.len -= 1;
            Some(Box::from_raw(first).key)
        }
    }

    /// A reference to the smallest key.
    pub fn min(&self) -> Option<&T> {
        // SAFETY: live node.
        unsafe { self.head[0].as_ref().map(|n| &n.key) }
    }

    /// Iterates keys in ascending order.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            curr: self.head[0],
            _list: std::marker::PhantomData,
        }
    }
}

impl<T: Ord> Default for SeqSkipList<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Drop for SeqSkipList<T> {
    fn drop(&mut self) {
        let mut curr = self.head[0];
        while !curr.is_null() {
            // SAFETY: unique ownership.
            let node = unsafe { Box::from_raw(curr) };
            curr = node.forwards[0];
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for SeqSkipList<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SeqSkipList")
            .field("len", &self.len)
            .finish()
    }
}

/// Ascending iterator over a [`SeqSkipList`].
pub struct Iter<'a, T> {
    curr: *mut Node<T>,
    _list: std::marker::PhantomData<&'a SeqSkipList<T>>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        if self.curr.is_null() {
            return None;
        }
        // SAFETY: the iterator borrows the list, so nodes stay alive.
        unsafe {
            let node = &*self.curr;
            self.curr = node.forwards[0];
            Some(&node.key)
        }
    }
}

impl<T> fmt::Debug for Iter<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Iter").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::level::random_below;

    #[test]
    fn sorted_iteration() {
        let mut s = SeqSkipList::new();
        for k in [5, 3, 9, 1, 7] {
            s.insert(k);
        }
        let got: Vec<i32> = s.iter().copied().collect();
        assert_eq!(got, vec![1, 3, 5, 7, 9]);
    }

    #[test]
    fn pop_min_drains_in_order() {
        let mut s = SeqSkipList::new();
        for k in [4, 2, 8, 6] {
            s.insert(k);
        }
        assert_eq!(s.min(), Some(&2));
        assert_eq!(s.pop_min(), Some(2));
        assert_eq!(s.pop_min(), Some(4));
        assert_eq!(s.pop_min(), Some(6));
        assert_eq!(s.pop_min(), Some(8));
        assert_eq!(s.pop_min(), None);
        assert!(s.is_empty());
    }

    #[test]
    fn random_ops_match_btreeset() {
        use std::collections::BTreeSet;
        let mut model = BTreeSet::new();
        let mut s = SeqSkipList::new();
        for _ in 0..5_000 {
            let k = random_below(256) as i32;
            match random_below(3) {
                0 => assert_eq!(s.insert(k), model.insert(k)),
                1 => assert_eq!(s.remove(&k), model.remove(&k)),
                _ => assert_eq!(s.contains(&k), model.contains(&k)),
            }
            assert_eq!(s.len(), model.len());
        }
        let got: Vec<i32> = s.iter().copied().collect();
        let want: Vec<i32> = model.into_iter().collect();
        assert_eq!(got, want);
    }
}

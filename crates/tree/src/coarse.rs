use std::cmp::Ordering;
use std::fmt;

use cds_core::ConcurrentSet;
use parking_lot::Mutex;

struct Node<T> {
    key: T,
    left: Option<Box<Node<T>>>,
    right: Option<Box<Node<T>>>,
}

/// An unbalanced internal BST behind one mutex: the baseline of
/// experiment E7.
///
/// Deletion uses the standard successor replacement: a node with two
/// children takes the minimum key of its right subtree, and that successor
/// node (which has no left child) is spliced out.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentSet;
/// use cds_tree::CoarseBst;
///
/// let t = CoarseBst::new();
/// t.insert(2);
/// t.insert(1);
/// t.insert(3);
/// assert!(t.remove(&2));
/// assert_eq!(t.len(), 2);
/// ```
pub struct CoarseBst<T> {
    root: Mutex<Option<Box<Node<T>>>>,
}

impl<T: Ord> CoarseBst<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        CoarseBst {
            root: Mutex::new(None),
        }
    }

    /// Removes and returns the minimum key of the subtree in `slot`
    /// (which must be non-empty).
    fn pop_min(slot: &mut Option<Box<Node<T>>>) -> T {
        let node = slot.as_mut().expect("pop_min on empty subtree");
        if node.left.is_some() {
            Self::pop_min(&mut node.left)
        } else {
            let mut boxed = slot.take().expect("just observed Some");
            *slot = boxed.right.take();
            boxed.key
        }
    }

    fn remove_rec(slot: &mut Option<Box<Node<T>>>, key: &T) -> bool {
        let Some(node) = slot else { return false };
        match key.cmp(&node.key) {
            Ordering::Less => Self::remove_rec(&mut node.left, key),
            Ordering::Greater => Self::remove_rec(&mut node.right, key),
            Ordering::Equal => {
                if node.left.is_some() && node.right.is_some() {
                    node.key = Self::pop_min(&mut node.right);
                } else {
                    let mut boxed = slot.take().expect("matched Some");
                    *slot = boxed.left.take().or_else(|| boxed.right.take());
                }
                true
            }
        }
    }
}

impl<T: Ord> Default for CoarseBst<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Send> ConcurrentSet<T> for CoarseBst<T> {
    const NAME: &'static str = "coarse";

    fn insert(&self, value: T) -> bool {
        let mut root = self.root.lock();
        let mut cursor = &mut *root;
        loop {
            match cursor {
                None => {
                    *cursor = Some(Box::new(Node {
                        key: value,
                        left: None,
                        right: None,
                    }));
                    return true;
                }
                Some(node) => match value.cmp(&node.key) {
                    Ordering::Less => cursor = &mut node.left,
                    Ordering::Greater => cursor = &mut node.right,
                    Ordering::Equal => return false,
                },
            }
        }
    }

    fn remove(&self, value: &T) -> bool {
        let mut root = self.root.lock();
        Self::remove_rec(&mut root, value)
    }

    fn contains(&self, value: &T) -> bool {
        let root = self.root.lock();
        let mut cursor = &*root;
        while let Some(node) = cursor {
            match value.cmp(&node.key) {
                Ordering::Less => cursor = &node.left,
                Ordering::Greater => cursor = &node.right,
                Ordering::Equal => return true,
            }
        }
        false
    }

    fn len(&self) -> usize {
        let root = self.root.lock();
        let mut n = 0;
        let mut stack: Vec<&Node<T>> = root.as_deref().into_iter().collect();
        while let Some(node) = stack.pop() {
            n += 1;
            stack.extend(node.left.as_deref());
            stack.extend(node.right.as_deref());
        }
        n
    }
}

impl<T> Drop for CoarseBst<T> {
    fn drop(&mut self) {
        // Iterative teardown to avoid recursion-depth blowups on
        // adversarial (sorted-insert) shapes.
        let mut stack: Vec<Box<Node<T>>> = self.root.get_mut().take().into_iter().collect();
        while let Some(mut node) = stack.pop() {
            stack.extend(node.left.take());
            stack.extend(node.right.take());
        }
    }
}

impl<T> fmt::Debug for CoarseBst<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoarseBst").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentSet;

    #[test]
    fn two_child_deletion_uses_successor() {
        let t = CoarseBst::new();
        for k in [5, 3, 8, 2, 4, 7, 9] {
            t.insert(k);
        }
        assert!(t.remove(&5)); // two children
        assert!(!t.contains(&5));
        for k in [2, 3, 4, 7, 8, 9] {
            assert!(t.contains(&k));
        }
        assert_eq!(t.len(), 6);
    }

    #[test]
    fn sorted_insert_then_drop_does_not_overflow() {
        let t = CoarseBst::new();
        for k in 0..50_000 {
            t.insert(k);
        }
        drop(t);
    }

    #[test]
    fn remove_every_shape() {
        let t = CoarseBst::new();
        for k in [4, 2, 6, 1, 3, 5, 7] {
            t.insert(k);
        }
        for _ in 0..7 {
            let n = t.len();
            let k = (1..=7).find(|k| t.contains(k)).unwrap();
            assert!(t.remove(&k));
            assert_eq!(t.len(), n - 1);
        }
        assert!(t.is_empty());
    }
}

use cds_atomic::Ordering;
use std::cmp::Ordering as CmpOrdering;
use std::fmt;

use cds_core::ConcurrentSet;
use cds_reclaim::epoch::{Atomic, Guard, Owned, Shared};
use cds_reclaim::{Ebr, ReclaimGuard, Reclaimer};
use cds_sync::Backoff;

use crate::TreeKey;

// Update-word states, stored in the tag bits of the `Info` pointer.
const CLEAN: usize = 0;
const IFLAG: usize = 1;
const DFLAG: usize = 2;
const MARK: usize = 3;

struct Internal<T> {
    /// `(Info pointer, state tag)`: the node's coordination word.
    update: Atomic<Info<T>>,
    left: Atomic<Node<T>>,
    right: Atomic<Node<T>>,
}

struct Node<T> {
    key: TreeKey<T>,
    /// `Some` for internal routing nodes, `None` for leaves.
    inner: Option<Internal<T>>,
}

/// Operation descriptor published in an update word so other threads can
/// **help** complete the operation.
enum Info<T> {
    /// A pending leaf replacement at `p`.
    Insert {
        p: *mut Node<T>,
        new_internal: *mut Node<T>,
        l: *mut Node<T>,
    },
    /// A pending splice of `p` (and its leaf child `l`) out of `gp`.
    Delete {
        gp: *mut Node<T>,
        p: *mut Node<T>,
        l: *mut Node<T>,
        /// The exact update word observed at `p` when the delete was
        /// flagged; marking `p` CASes from this value.
        pupdate_ptr: *mut Info<T>,
        pupdate_tag: usize,
    },
}

/// The non-blocking external BST of Ellen, Fatourou, Ruppert & van Breugel
/// (PODC 2010) — the first practical lock-free binary search tree.
///
/// Keys live at leaves; internal nodes route. Every internal node carries
/// an **update word**: an `Info`-descriptor pointer whose tag bits encode
/// a state (`Clean`, `IFlag` — insert pending, `DFlag` — delete pending at
/// the grandparent, `Mark` — node condemned). An operation first CASes the
/// word from `Clean` to a flagged state (publishing its descriptor), then
/// performs the child swaps; any thread that encounters a flagged word
/// *helps* the pending operation to completion before retrying its own —
/// which is exactly what makes the tree lock-free: a stalled thread can
/// never block others.
///
/// * **insert** flags the parent (`IFlag`), replaces the leaf with a new
///   routing node over the old leaf and the new one, then unflags.
/// * **remove** flags the grandparent (`DFlag`), *marks* the parent
///   (`Mark`, permanent), splices the parent out (the grandparent adopts
///   the sibling), then unflags. If marking fails, the delete backs off,
///   unflagging the grandparent.
///
/// Spliced nodes and superseded descriptors go to the reclamation
/// backend `R` ([`cds_reclaim::Reclaimer`], default [`Ebr`]). The tree
/// uses the **blanket** protection mode ([`Reclaimer::enter_blanket`]):
/// child pointers carry no mark bits to validate against, and helpers
/// dereference raw descriptor-held pointers even after the operation they
/// help has completed — per-pointer hazards are insufficient by design
/// (Brown 2015 discusses why such helping-based trees defeat plain
/// hazard pointers), but any backend honoring the
/// retired-means-unreachable-to-new-operations contract (epochs, eras)
/// works unchanged. `T: Clone` because routing nodes need their own copy
/// of a key.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentSet;
/// use cds_tree::LockFreeBst;
///
/// let t = LockFreeBst::new();
/// assert!(t.insert(7));
/// assert!(t.contains(&7));
/// assert!(t.remove(&7));
/// ```
pub struct LockFreeBst<T, R: Reclaimer = Ebr> {
    /// Root routing node (`Inf2`); never replaced or removed.
    root: Atomic<Node<T>>,
    _reclaimer: std::marker::PhantomData<R>,
}

// SAFETY: reclaimer-managed nodes and descriptors; all mutation is
// CAS-based.
unsafe impl<T: Send + Sync, R: Reclaimer> Send for LockFreeBst<T, R> {}
unsafe impl<T: Send + Sync, R: Reclaimer> Sync for LockFreeBst<T, R> {}

struct SearchResult<'g, T> {
    gp: Shared<'g, Node<T>>,
    p: Shared<'g, Node<T>>,
    l: Shared<'g, Node<T>>,
    gpupdate: Shared<'g, Info<T>>,
    pupdate: Shared<'g, Info<T>>,
}

impl<T: Ord + Clone> LockFreeBst<T> {
    /// Creates an empty set on the default ([`Ebr`]) backend.
    pub fn new() -> Self {
        Self::with_reclaimer()
    }
}

impl<T: Ord + Clone, R: Reclaimer> LockFreeBst<T, R> {
    /// Creates an empty set on the reclamation backend `R`.
    pub fn with_reclaimer() -> Self {
        let left = Owned::new(Node {
            key: TreeKey::Inf1,
            inner: None,
        });
        let right = Owned::new(Node {
            key: TreeKey::Inf2,
            inner: None,
        });
        LockFreeBst {
            root: Atomic::new(Node {
                key: TreeKey::Inf2,
                inner: Some(Internal {
                    update: Atomic::null(),
                    left: Atomic::from(left),
                    right: Atomic::from(right),
                }),
            }),
            _reclaimer: std::marker::PhantomData,
        }
    }

    fn internal_of(node: &Node<T>) -> &Internal<T> {
        node.inner.as_ref().expect("expected an internal node")
    }

    /// Descends from the root to a leaf, recording the last two internal
    /// nodes and their update words.
    fn search<'g, G: ReclaimGuard>(&self, key: &T, guard: &'g G) -> SearchResult<'g, T> {
        let mut gp = Shared::null();
        let mut gpupdate = Shared::null();
        let mut p = Shared::null();
        let mut pupdate = Shared::null();
        let mut l = self.root.load(Ordering::Acquire, guard);
        loop {
            cds_core::stress::yield_point();
            // SAFETY: pinned; nodes are epoch-managed.
            let l_ref = unsafe { l.deref() };
            let Some(int) = &l_ref.inner else { break };
            gp = p;
            gpupdate = pupdate;
            p = l;
            pupdate = int.update.load(Ordering::Acquire, guard);
            l = if l_ref.key.cmp_key(key) == CmpOrdering::Greater {
                int.left.load(Ordering::Acquire, guard)
            } else {
                int.right.load(Ordering::Acquire, guard)
            };
        }
        SearchResult {
            gp,
            p,
            l,
            gpupdate,
            pupdate,
        }
    }

    /// Swings the appropriate child of `parent` from `old` to `new`.
    ///
    /// The side is determined by `old`'s (immutable) key, so helpers always
    /// target the same slot; exactly one CAS per transition succeeds.
    fn cas_child<G: ReclaimGuard>(
        parent: *mut Node<T>,
        old: Shared<'_, Node<T>>,
        new: Shared<'_, Node<T>>,
        guard: &G,
    ) -> bool {
        // SAFETY: `parent` is flagged by the operation this call helps, so
        // it cannot be freed; pinned.
        let parent_ref = unsafe { &*parent };
        let int = Self::internal_of(parent_ref);
        // SAFETY: `old` is alive (it is being replaced under a flag).
        let side = if unsafe { old.deref() }.key < parent_ref.key {
            &int.left
        } else {
            &int.right
        };
        let swung = side
            .compare_exchange(old, new, Ordering::AcqRel, Ordering::Relaxed, guard)
            .is_ok();
        cds_obs::cas_outcome(swung);
        swung
    }

    /// Helps whatever operation the update word `word` describes.
    fn help<G: ReclaimGuard>(&self, word: Shared<'_, Info<T>>, guard: &G) {
        match word.tag() {
            IFLAG => self.help_insert(word.with_tag(0), guard),
            MARK => self.help_marked(word.with_tag(0), guard),
            DFLAG => {
                let _ = self.help_delete(word.with_tag(0), guard);
            }
            _ => {}
        }
    }

    /// Completes a flagged insert: swing the child, then unflag.
    fn help_insert<G: ReclaimGuard>(&self, op: Shared<'_, Info<T>>, guard: &G) {
        // SAFETY: `op` was published in an update word; descriptors are
        // epoch-managed.
        let Info::Insert { p, new_internal, l } = (unsafe { op.deref() }) else {
            unreachable!("IFlag word must hold an Insert descriptor");
        };
        // The old leaf `l` is *reused* as a child of `new_internal`, so the
        // child swap creates no garbage.
        Self::cas_child(
            *p,
            Shared::from_raw(*l),
            Shared::from_raw(*new_internal),
            guard,
        );
        // Unflag (idempotent: only the exact IFlag word matches).
        // SAFETY: `p` is flagged by `op`, hence alive.
        let p_int = Self::internal_of(unsafe { &**p });
        let _ = p_int.update.compare_exchange(
            op.with_tag(IFLAG),
            op.with_tag(CLEAN),
            Ordering::AcqRel,
            Ordering::Relaxed,
            guard,
        );
    }

    /// Tries to complete a flagged delete: mark the parent, then splice.
    /// Returns `false` if the mark failed and the delete was aborted.
    fn help_delete<G: ReclaimGuard>(&self, op: Shared<'_, Info<T>>, guard: &G) -> bool {
        // SAFETY: as in `help_insert`.
        let Info::Delete {
            gp,
            p,
            pupdate_ptr,
            pupdate_tag,
            ..
        } = (unsafe { op.deref() })
        else {
            unreachable!("DFlag word must hold a Delete descriptor");
        };
        let expected = Shared::from_raw(*pupdate_ptr).with_tag(*pupdate_tag);
        let mark_word = op.with_tag(MARK);
        // SAFETY: `p` cannot be freed while `gp` is DFlagged by `op` (its
        // own deletion would require marking it, which needs a Clean word).
        let p_int = Self::internal_of(unsafe { &**p });
        match p_int.update.compare_exchange(
            expected,
            mark_word,
            Ordering::AcqRel,
            Ordering::Acquire,
            guard,
        ) {
            Ok(_) => {
                cds_obs::cas_outcome(true);
                self.help_marked(op, guard);
                true
            }
            Err(actual) => {
                cds_obs::cas_outcome(false);
                if actual == mark_word {
                    // Another helper already marked it for this very op.
                    self.help_marked(op, guard);
                    true
                } else {
                    // Something else is pending at p: help it, then abort
                    // this delete by unflagging gp.
                    self.help(actual, guard);
                    // SAFETY: gp is alive (flagged by op until unflagged).
                    let gp_int = Self::internal_of(unsafe { &**gp });
                    let _ = gp_int.update.compare_exchange(
                        op.with_tag(DFLAG),
                        op.with_tag(CLEAN),
                        Ordering::AcqRel,
                        Ordering::Relaxed,
                        guard,
                    );
                    false
                }
            }
        }
    }

    /// Completes a delete whose parent is marked: splice and unflag.
    fn help_marked<G: ReclaimGuard>(&self, op: Shared<'_, Info<T>>, guard: &G) {
        // SAFETY: as in `help_insert`.
        let Info::Delete { gp, p, l, .. } = (unsafe { op.deref() }) else {
            unreachable!("Mark word must hold a Delete descriptor");
        };
        // The sibling of `l` under `p` survives; `p` and `l` are spliced out.
        // SAFETY: `p` is marked: its children can no longer change.
        let p_int = Self::internal_of(unsafe { &**p });
        let left = p_int.left.load(Ordering::Acquire, guard);
        let sibling = if left.as_raw() == *l {
            p_int.right.load(Ordering::Acquire, guard)
        } else {
            left
        };
        if Self::cas_child(*gp, Shared::from_raw(*p), sibling, guard) {
            // SAFETY: we performed the splice: `p` and `l` are now
            // unreachable from the root; defer them exactly once.
            unsafe {
                guard.retire(Shared::from_raw(*p));
                guard.retire(Shared::from_raw(*l));
            }
        }
        // Unflag gp.
        // SAFETY: gp alive while DFlagged.
        let gp_int = Self::internal_of(unsafe { &**gp });
        let _ = gp_int.update.compare_exchange(
            op.with_tag(DFLAG),
            op.with_tag(CLEAN),
            Ordering::AcqRel,
            Ordering::Relaxed,
            guard,
        );
    }

    /// Retires the descriptor a successful flag CAS displaced (the previous
    /// operation's Clean-state descriptor), if any.
    ///
    /// # Safety
    ///
    /// `old` must have just been displaced from an update word by a CAS
    /// performed by the caller, with `old.tag() == CLEAN`.
    unsafe fn retire_displaced<G: ReclaimGuard>(old: Shared<'_, Info<T>>, guard: &G) {
        if !old.is_null() {
            debug_assert_eq!(old.tag(), CLEAN);
            // SAFETY: a Clean descriptor is reachable only through the word
            // it was just displaced from (see module reasoning: committed
            // Delete descriptors also sit in the Mark word of their spliced
            // — hence unreachable — parent), so no new thread can find it.
            unsafe { guard.retire(old.with_tag(0)) };
        }
    }
}

impl<T: Ord + Clone, R: Reclaimer> Default for LockFreeBst<T, R> {
    fn default() -> Self {
        Self::with_reclaimer()
    }
}

impl<T: Ord + Clone + Send + Sync, R: Reclaimer> ConcurrentSet<T> for LockFreeBst<T, R> {
    const NAME: &'static str = "ellen";

    fn insert(&self, value: T) -> bool {
        let guard = R::enter_blanket();
        let backoff = Backoff::new();
        let mut value_slot = Some(value);
        loop {
            cds_core::stress::yield_point();
            let key = value_slot.as_ref().expect("present until success");
            let s = self.search(key, &guard);
            // SAFETY: pinned.
            let l_ref = unsafe { s.l.deref() };
            if l_ref.key.cmp_key(key) == CmpOrdering::Equal {
                return false;
            }
            if s.pupdate.tag() != CLEAN {
                cds_obs::count(cds_obs::Event::BstRetry);
                self.help(s.pupdate, &guard);
                continue;
            }

            // Build the replacement subtree: a routing node over the old
            // leaf (reused) and the new leaf.
            let new_key = TreeKey::Finite(value_slot.take().expect("still present"));
            let new_leaf = Owned::new(Node {
                key: new_key,
                inner: None,
            })
            .into_shared(&guard);
            // SAFETY: new_leaf is ours; l_ref is pinned.
            let (lc, rc, route) = if unsafe { new_leaf.deref() }.key < l_ref.key {
                (new_leaf, s.l, l_ref.key.clone())
            } else {
                (s.l, new_leaf, unsafe { new_leaf.deref() }.key.clone())
            };
            let new_internal = Owned::new(Node {
                key: route,
                inner: Some(Internal {
                    update: Atomic::null(),
                    left: Atomic::null(),
                    right: Atomic::null(),
                }),
            })
            .into_shared(&guard);
            {
                // SAFETY: unpublished.
                let int = Self::internal_of(unsafe { new_internal.deref() });
                int.left.store(lc, Ordering::Relaxed);
                int.right.store(rc, Ordering::Relaxed);
            }
            let op = Owned::new(Info::Insert {
                p: s.p.as_raw(),
                new_internal: new_internal.as_raw(),
                l: s.l.as_raw(),
            })
            .into_shared(&guard);

            // SAFETY: pinned; p cannot be freed while we hold a path to it
            // (it was reachable and can only be retired after a splice that
            // our flag CAS below would then fail against).
            let p_int = Self::internal_of(unsafe { s.p.deref() });
            match p_int.update.compare_exchange(
                s.pupdate,
                op.with_tag(IFLAG),
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(_) => {
                    cds_obs::cas_outcome(true);
                    // SAFETY: we displaced the previous Clean descriptor.
                    unsafe { Self::retire_displaced(s.pupdate, &guard) };
                    self.help_insert(op, &guard);
                    return true;
                }
                Err(actual) => {
                    cds_obs::cas_outcome(false);
                    cds_obs::count(cds_obs::Event::BstRetry);
                    // Reclaim the unpublished allocations and recover the key.
                    // SAFETY: none of these were published.
                    unsafe {
                        drop(op.into_owned());
                        drop(new_internal.into_owned());
                        let leaf = new_leaf.into_owned().into_box();
                        match leaf.key {
                            TreeKey::Finite(v) => value_slot = Some(v),
                            _ => unreachable!("new leaf key is finite"),
                        }
                    }
                    self.help(actual, &guard);
                    backoff.spin();
                }
            }
        }
    }

    fn remove(&self, value: &T) -> bool {
        let guard = R::enter_blanket();
        let backoff = Backoff::new();
        loop {
            cds_core::stress::yield_point();
            let s = self.search(value, &guard);
            // SAFETY: pinned.
            if unsafe { s.l.deref() }.key.cmp_key(value) != CmpOrdering::Equal {
                return false;
            }
            // A finite leaf is at depth ≥ 2: gp exists.
            debug_assert!(!s.gp.is_null());
            if s.gpupdate.tag() != CLEAN {
                cds_obs::count(cds_obs::Event::BstRetry);
                self.help(s.gpupdate, &guard);
                continue;
            }
            if s.pupdate.tag() != CLEAN {
                cds_obs::count(cds_obs::Event::BstRetry);
                self.help(s.pupdate, &guard);
                continue;
            }
            let op = Owned::new(Info::Delete {
                gp: s.gp.as_raw(),
                p: s.p.as_raw(),
                l: s.l.as_raw(),
                pupdate_ptr: s.pupdate.as_raw(),
                pupdate_tag: s.pupdate.tag(),
            })
            .into_shared(&guard);
            // SAFETY: pinned.
            let gp_int = Self::internal_of(unsafe { s.gp.deref() });
            match gp_int.update.compare_exchange(
                s.gpupdate,
                op.with_tag(DFLAG),
                Ordering::AcqRel,
                Ordering::Acquire,
                &guard,
            ) {
                Ok(_) => {
                    cds_obs::cas_outcome(true);
                    // SAFETY: we displaced the previous Clean descriptor.
                    unsafe { Self::retire_displaced(s.gpupdate, &guard) };
                    if self.help_delete(op, &guard) {
                        return true;
                    }
                    // Aborted (mark failed): `op` stays reachable from
                    // gp.update in the Clean state and will be retired by
                    // the next successful flag there. Retry.
                    cds_obs::count(cds_obs::Event::BstRetry);
                    backoff.spin();
                }
                Err(actual) => {
                    cds_obs::cas_outcome(false);
                    cds_obs::count(cds_obs::Event::BstRetry);
                    // SAFETY: unpublished.
                    unsafe { drop(op.into_owned()) };
                    self.help(actual, &guard);
                    backoff.spin();
                }
            }
        }
    }

    fn contains(&self, value: &T) -> bool {
        let guard = R::enter_blanket();
        let s = self.search(value, &guard);
        // SAFETY: pinned.
        unsafe { s.l.deref() }.key.cmp_key(value) == CmpOrdering::Equal
    }

    fn len(&self) -> usize {
        let guard = R::enter_blanket();
        let mut n = 0;
        let mut stack = vec![self.root.load(Ordering::Acquire, &guard)];
        while let Some(node) = stack.pop() {
            // SAFETY: pinned.
            let node_ref = unsafe { node.deref() };
            match &node_ref.inner {
                None => n += usize::from(node_ref.key.is_finite()),
                Some(int) => {
                    stack.push(int.left.load(Ordering::Acquire, &guard));
                    stack.push(int.right.load(Ordering::Acquire, &guard));
                }
            }
        }
        n
    }
}

impl<T, R: Reclaimer> Drop for LockFreeBst<T, R> {
    fn drop(&mut self) {
        // SAFETY: unique access; the unprotected guard is a pure load
        // witness on every backend. Spliced-out nodes and displaced
        // descriptors were retired through `R` and are freed by the
        // backend, not here.
        let guard = unsafe { Guard::unprotected() };
        let mut stack = vec![self.root.load(Ordering::Relaxed, &guard)];
        while let Some(node) = stack.pop() {
            if node.is_null() {
                continue;
            }
            // SAFETY: unique ownership of every reachable node; each Clean
            // descriptor is reachable from exactly one reachable node (see
            // `retire_displaced`).
            unsafe {
                let boxed = node.into_owned().into_box();
                if let Some(int) = &boxed.inner {
                    let info = int.update.load(Ordering::Relaxed, &guard);
                    if !info.is_null() {
                        drop(info.with_tag(0).into_owned());
                    }
                    stack.push(int.left.load(Ordering::Relaxed, &guard));
                    stack.push(int.right.load(Ordering::Relaxed, &guard));
                }
            }
        }
    }
}

impl<T, R: Reclaimer> fmt::Debug for LockFreeBst<T, R> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("LockFreeBst")
            .field("reclaimer", &R::NAME)
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentSet;
    use std::sync::Arc;

    #[test]
    fn sentinels_are_invisible() {
        let t: LockFreeBst<i64> = LockFreeBst::new();
        assert_eq!(t.len(), 0);
        assert!(!t.contains(&1));
        assert!(!t.remove(&1));
    }

    #[test]
    fn insert_then_delete_every_order() {
        let t = LockFreeBst::new();
        for k in [4, 2, 6, 1, 3, 5, 7] {
            assert!(t.insert(k));
        }
        assert_eq!(t.len(), 7);
        // Delete in an order that exercises root-adjacent and deep splices.
        for k in [4, 1, 7, 3, 5, 2, 6] {
            assert!(t.remove(&k), "remove {k}");
            assert!(!t.contains(&k));
        }
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn set_semantics_on_every_backend() {
        fn run<R: Reclaimer>() {
            let t: LockFreeBst<i64, R> = LockFreeBst::with_reclaimer();
            for k in 0..64 {
                assert!(t.insert(k), "{} backend", R::NAME);
            }
            for k in (0..64).step_by(2) {
                assert!(t.remove(&k), "{} backend", R::NAME);
            }
            for k in 0..64 {
                assert_eq!(t.contains(&k), k % 2 == 1, "{} backend", R::NAME);
            }
            assert_eq!(t.len(), 32);
            R::collect();
        }
        run::<Ebr>();
        run::<cds_reclaim::Hazard>();
        run::<cds_reclaim::Leak>();
        run::<cds_reclaim::DebugReclaim>();
    }

    #[test]
    fn contended_same_leaf_races() {
        for _ in 0..10 {
            let t = Arc::new(LockFreeBst::new());
            let inserters: Vec<_> = (0..4)
                .map(|_| {
                    let t = Arc::clone(&t);
                    std::thread::spawn(move || t.insert(99))
                })
                .collect();
            let wins = inserters
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|&b| b)
                .count();
            assert_eq!(wins, 1);
            let removers: Vec<_> = (0..4)
                .map(|_| {
                    let t = Arc::clone(&t);
                    std::thread::spawn(move || t.remove(&99))
                })
                .collect();
            let removed = removers
                .into_iter()
                .map(|h| h.join().unwrap())
                .filter(|&b| b)
                .count();
            assert_eq!(removed, 1);
            assert_eq!(t.len(), 0);
        }
    }

    #[test]
    fn helping_under_churn_keeps_tree_consistent() {
        let t = Arc::new(LockFreeBst::new());
        let handles: Vec<_> = (0..4)
            .map(|id| {
                let t = Arc::clone(&t);
                std::thread::spawn(move || {
                    for round in 0..300i64 {
                        let k = (id * 37 + round) % 24;
                        t.insert(k);
                        t.remove(&k);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let n = t.len();
        let found = (0..24i64).filter(|k| t.contains(k)).count();
        assert_eq!(n, found);
    }
}

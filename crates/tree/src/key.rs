//! Keys extended with the two sentinel infinities the external BSTs need.

use std::cmp::Ordering;

/// A key or one of two sentinel infinities, with
/// `Finite(_) < Inf1 < Inf2`.
///
/// The external BSTs (Ellen et al.; the fine-grained variant follows the
/// same shape) are seeded with a root `Internal(Inf2)` whose children are
/// `Leaf(Inf1)` and `Leaf(Inf2)`. Every finite key routes left of both
/// sentinels, so after the first insertion every *real* leaf has both a
/// parent and a grandparent — exactly what the deletion protocol requires —
/// and the sentinel leaves are never deleted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TreeKey<T> {
    /// An ordinary key.
    Finite(T),
    /// Greater than every finite key.
    Inf1,
    /// Greater than `Inf1`.
    Inf2,
}

impl<T> TreeKey<T> {
    /// The finite key, if this is one (used by tests and diagnostics).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn finite(&self) -> Option<&T> {
        match self {
            TreeKey::Finite(v) => Some(v),
            _ => None,
        }
    }

    pub(crate) fn is_finite(&self) -> bool {
        matches!(self, TreeKey::Finite(_))
    }
}

impl<T: Ord> TreeKey<T> {
    /// Compares against a finite key.
    pub(crate) fn cmp_key(&self, key: &T) -> Ordering {
        match self {
            TreeKey::Finite(v) => v.cmp(key),
            _ => Ordering::Greater,
        }
    }
}

impl<T: Ord> PartialOrd for TreeKey<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord> Ord for TreeKey<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        use TreeKey::*;
        match (self, other) {
            (Finite(a), Finite(b)) => a.cmp(b),
            (Finite(_), _) => Ordering::Less,
            (_, Finite(_)) => Ordering::Greater,
            (Inf1, Inf1) | (Inf2, Inf2) => Ordering::Equal,
            (Inf1, Inf2) => Ordering::Less,
            (Inf2, Inf1) => Ordering::Greater,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sentinel_order() {
        assert!(TreeKey::Finite(i64::MAX) < TreeKey::Inf1);
        assert!(TreeKey::<i64>::Inf1 < TreeKey::Inf2);
        assert!(TreeKey::Finite(1) < TreeKey::Finite(2));
    }

    #[test]
    fn cmp_key_treats_sentinels_as_greater() {
        assert_eq!(TreeKey::<i32>::Inf1.cmp_key(&i32::MAX), Ordering::Greater);
        assert_eq!(TreeKey::Finite(3).cmp_key(&3), Ordering::Equal);
    }

    #[test]
    fn finite_accessor() {
        assert_eq!(TreeKey::Finite(5).finite(), Some(&5));
        assert!(TreeKey::<i32>::Inf2.finite().is_none());
        assert!(TreeKey::Finite(1).is_finite());
        assert!(!TreeKey::<i32>::Inf1.is_finite());
    }
}

use std::cmp::Ordering as CmpOrdering;
use std::fmt;
use std::ptr;

use cds_core::ConcurrentSet;
use parking_lot::{Mutex, MutexGuard};

use crate::TreeKey;

/// An internal (routing) node's lockable pair of children.
type Children<T> = Mutex<[*mut Node<T>; 2]>;

struct Node<T> {
    key: TreeKey<T>,
    /// `Some` for internal routing nodes, `None` for leaves.
    children: Option<Children<T>>,
}

const LEFT: usize = 0;
const RIGHT: usize = 1;

/// A fine-grained **external** BST with hand-over-hand locking.
///
/// Keys live at the leaves; internal nodes only route (left subtree `<`
/// key `≤` right subtree). Each internal node's child pair is protected by
/// its own lock, and traversals couple locks parent→child, so operations
/// in disjoint subtrees proceed in parallel.
///
/// Updates are purely local, which is the point of external trees:
///
/// * **insert** replaces a leaf with a routing node over the old leaf and
///   the new one — requires only the parent's lock;
/// * **remove** splices out a leaf *and* its parent (the grandparent
///   adopts the sibling) — requires the grandparent's and parent's locks,
///   exactly the two a hand-over-hand descent already holds.
///
/// As with [`FineList`](../cds_list/struct.FineList.html), holding both
/// locks at removal means no thread is at (or can reach) the spliced
/// nodes, so they are freed immediately — no deferred reclamation.
///
/// `T: Clone` because the routing node created by an insert needs its own
/// copy of the larger key.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentSet;
/// use cds_tree::FineBst;
///
/// let t = FineBst::new();
/// t.insert(1);
/// t.insert(2);
/// assert!(t.remove(&1));
/// assert!(t.contains(&2));
/// ```
pub struct FineBst<T> {
    /// Root routing node (`Inf2`); never removed.
    root: *mut Node<T>,
}

// SAFETY: all child-pointer access is lock-mediated; keys move by value.
unsafe impl<T: Send> Send for FineBst<T> {}
unsafe impl<T: Send> Sync for FineBst<T> {}

impl<T: Ord + Clone> FineBst<T> {
    /// Creates an empty set.
    pub fn new() -> Self {
        let left = Box::into_raw(Box::new(Node {
            key: TreeKey::Inf1,
            children: None,
        }));
        let right = Box::into_raw(Box::new(Node {
            key: TreeKey::Inf2,
            children: None,
        }));
        let root = Box::into_raw(Box::new(Node {
            key: TreeKey::Inf2,
            children: Some(Mutex::new([left, right])),
        }));
        FineBst { root }
    }

    fn direction(node_key: &TreeKey<T>, key: &T) -> usize {
        // Go left iff key < node.key.
        if node_key.cmp_key(key) == CmpOrdering::Greater {
            LEFT
        } else {
            RIGHT
        }
    }
}

impl<T: Ord + Clone> Default for FineBst<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Clone + Send> ConcurrentSet<T> for FineBst<T> {
    const NAME: &'static str = "fine";

    fn insert(&self, value: T) -> bool {
        // SAFETY: the root is never freed while the tree lives; every node
        // reached below is protected by its parent's held lock.
        let mut p = unsafe { &*self.root };
        let mut p_guard: MutexGuard<'_, [*mut Node<T>; 2]> =
            p.children.as_ref().expect("root is internal").lock();
        loop {
            let dir = Self::direction(&p.key, &value);
            let child_ptr = p_guard[dir];
            // SAFETY: reachable through a held lock; removers need it too.
            let child = unsafe { &*child_ptr };
            match &child.children {
                Some(lock) => {
                    // Couple: lock the child before releasing the parent.
                    let child_guard = lock.lock();
                    p = child;
                    p_guard = child_guard;
                }
                None => {
                    // Leaf reached; p's lock freezes it.
                    if child.key.cmp_key(&value) == CmpOrdering::Equal {
                        return false;
                    }
                    let new_leaf = Box::into_raw(Box::new(Node {
                        key: TreeKey::Finite(value),
                        children: None,
                    }));
                    // Routing key = max of the two keys; smaller goes left.
                    // SAFETY: new_leaf is ours until published.
                    let new_key = unsafe { &*new_leaf }.key.clone().max(child.key.clone());
                    let pair = if unsafe { &*new_leaf }.key < child.key {
                        [new_leaf, child_ptr]
                    } else {
                        [child_ptr, new_leaf]
                    };
                    let new_internal = Box::into_raw(Box::new(Node {
                        key: new_key,
                        children: Some(Mutex::new(pair)),
                    }));
                    p_guard[dir] = new_internal;
                    return true;
                }
            }
        }
    }

    fn remove(&self, value: &T) -> bool {
        // SAFETY: as in `insert`.
        let mut p = unsafe { &*self.root };
        let mut p_ptr = self.root;
        let mut p_guard: MutexGuard<'_, [*mut Node<T>; 2]> =
            p.children.as_ref().expect("root is internal").lock();
        // The grandparent's guard plus which of its slots points at `p`.
        let mut gp_state: Option<(MutexGuard<'_, [*mut Node<T>; 2]>, usize)> = None;
        loop {
            let dir = Self::direction(&p.key, value);
            let child_ptr = p_guard[dir];
            // SAFETY: protected by p's held lock.
            let child = unsafe { &*child_ptr };
            match &child.children {
                Some(lock) => {
                    let child_guard = lock.lock();
                    gp_state = Some((p_guard, dir));
                    p = child;
                    p_ptr = child_ptr;
                    p_guard = child_guard;
                }
                None => {
                    if child.key.cmp_key(value) != CmpOrdering::Equal {
                        return false;
                    }
                    // A finite leaf is at depth ≥ 2, so a grandparent
                    // guard must exist.
                    let (mut gp_guard, gp_dir) =
                        gp_state.expect("finite leaf always has a grandparent");
                    let sibling = p_guard[1 - dir];
                    // Grandparent adopts the sibling; p and the leaf are out.
                    gp_guard[gp_dir] = sibling;
                    drop(p_guard);
                    drop(gp_guard);
                    // SAFETY: we held the grandparent's and p's locks, so
                    // no thread is at p or the leaf, and none can reach
                    // them now: immediate free is safe.
                    unsafe {
                        drop(Box::from_raw(p_ptr));
                        drop(Box::from_raw(child_ptr));
                    }
                    return true;
                }
            }
        }
    }

    fn contains(&self, value: &T) -> bool {
        // SAFETY: as in `insert`.
        let mut p = unsafe { &*self.root };
        let mut p_guard: MutexGuard<'_, [*mut Node<T>; 2]> =
            p.children.as_ref().expect("root is internal").lock();
        loop {
            let dir = Self::direction(&p.key, value);
            let child_ptr = p_guard[dir];
            let child = unsafe { &*child_ptr };
            match &child.children {
                Some(lock) => {
                    let child_guard = lock.lock();
                    p = child;
                    p_guard = child_guard;
                }
                None => return child.key.cmp_key(value) == CmpOrdering::Equal,
            }
        }
    }

    fn len(&self) -> usize {
        // Lock-coupled DFS holding O(depth) locks; acquisition is strictly
        // parent→child everywhere in this type, so no deadlock.
        fn count<T>(node: *mut Node<T>) -> usize {
            // SAFETY: the caller holds the parent's lock (or `node` is the
            // root), so the node is alive.
            let node = unsafe { &*node };
            match &node.children {
                None => usize::from(node.key.is_finite()),
                Some(lock) => {
                    let guard = lock.lock();
                    let [l, r] = *guard;
                    count(l) + count(r)
                }
            }
        }
        count(self.root)
    }
}

impl<T> Drop for FineBst<T> {
    fn drop(&mut self) {
        let mut stack = vec![self.root];
        while let Some(ptr) = stack.pop() {
            if ptr.is_null() {
                continue;
            }
            // SAFETY: unique access; each node is visited once.
            let node = unsafe { Box::from_raw(ptr) };
            if let Some(lock) = node.children {
                let [l, r] = lock.into_inner();
                stack.push(l);
                stack.push(r);
            }
        }
        self.root = ptr::null_mut();
    }
}

impl<T> fmt::Debug for FineBst<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FineBst").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentSet;
    use std::sync::Arc;

    #[test]
    fn sentinels_are_invisible() {
        let t: FineBst<i32> = FineBst::new();
        assert_eq!(t.len(), 0);
        assert!(!t.contains(&5));
        assert!(!t.remove(&5));
    }

    #[test]
    fn disjoint_subtrees_in_parallel() {
        let t = Arc::new(FineBst::new());
        let lo = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                for k in 0..300 {
                    assert!(t.insert(k));
                }
            })
        };
        let hi = {
            let t = Arc::clone(&t);
            std::thread::spawn(move || {
                for k in 10_000..10_300 {
                    assert!(t.insert(k));
                }
            })
        };
        lo.join().unwrap();
        hi.join().unwrap();
        assert_eq!(t.len(), 600);
    }

    #[test]
    fn remove_reclaims_parent_and_leaf() {
        let t = FineBst::new();
        for k in 0..64 {
            t.insert(k);
        }
        for k in 0..64 {
            assert!(t.remove(&k), "remove {k}");
        }
        assert_eq!(t.len(), 0);
        // Tree stays usable after full drain.
        assert!(t.insert(5));
        assert!(t.contains(&5));
    }
}

//! Concurrent binary search trees.
//!
//! Three implementations of [`cds_core::ConcurrentSet`]:
//!
//! * [`CoarseBst`] — a plain internal BST behind one mutex (E7 baseline).
//! * [`FineBst`] — an **external** BST (keys at the leaves, internal nodes
//!   route) with hand-over-hand locking: a traversal holds at most the
//!   locks of the current node and its parent, so operations in disjoint
//!   subtrees run in parallel, and a delete — which splices out a leaf and
//!   its parent — holds exactly the grandparent and parent locks it needs.
//! * [`LockFreeBst`] — the non-blocking external BST of **Ellen, Fatourou,
//!   Ruppert & van Breugel (PODC 2010)**, the first practical lock-free
//!   BST. Every internal node carries an *update* word combining a state
//!   (`Clean`/`IFlag`/`DFlag`/`Mark` — the tag bits of an epoch pointer)
//!   with a pointer to an *operation descriptor*; threads that encounter a
//!   pending operation **help** complete it, which is what makes the tree
//!   lock-free.
//!
//! External trees are the representation of choice for concurrent BSTs
//! because updates touch a constant number of nodes near a leaf and never
//! rotate. No rebalancing is attempted (as in the published algorithm);
//! expected depth is logarithmic for random keys.
//!
//! # Example
//!
//! ```
//! use cds_core::ConcurrentSet;
//! use cds_tree::LockFreeBst;
//!
//! let t = LockFreeBst::new();
//! t.insert(4);
//! t.insert(2);
//! assert!(t.contains(&2));
//! assert!(t.remove(&4));
//! assert_eq!(t.len(), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coarse;
mod ellen;
mod fine;
mod key;

pub use coarse::CoarseBst;
pub use ellen::LockFreeBst;
pub use fine::FineBst;

pub(crate) use key::TreeKey;

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentSet;
    use std::sync::Arc;

    fn set_semantics<S: ConcurrentSet<i64> + Default>() {
        let s = S::default();
        assert!(s.is_empty());
        assert!(!s.remove(&1));
        assert!(s.insert(4));
        assert!(s.insert(2));
        assert!(s.insert(6));
        assert!(s.insert(1));
        assert!(s.insert(3));
        assert!(!s.insert(4));
        assert_eq!(s.len(), 5);
        for k in [1, 2, 3, 4, 6] {
            assert!(s.contains(&k), "missing {k}");
        }
        assert!(!s.contains(&5));
        // Remove interior, leaf, and root-ish keys.
        assert!(s.remove(&2));
        assert!(s.remove(&4));
        assert!(s.remove(&1));
        assert!(!s.remove(&2));
        assert_eq!(s.len(), 2);
        assert!(s.contains(&3) && s.contains(&6));
    }

    fn shuffled_workout<S: ConcurrentSet<i64> + Default>() {
        let s = S::default();
        let mut keys: Vec<i64> = (0..2_000).collect();
        let mut x = 0xdeadbeefu64;
        for i in (1..keys.len()).rev() {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            keys.swap(i, (x as usize) % (i + 1));
        }
        for &k in &keys {
            assert!(s.insert(k));
        }
        assert_eq!(s.len(), 2_000);
        for &k in &keys {
            assert!(s.contains(&k));
        }
        for &k in keys.iter().filter(|k| *k % 3 == 0) {
            assert!(s.remove(&k));
        }
        for k in 0..2_000 {
            assert_eq!(s.contains(&k), k % 3 != 0);
        }
    }

    fn concurrent_mixed<S: ConcurrentSet<i64> + Default + 'static>() {
        let s = Arc::new(S::default());
        for k in (0..128).step_by(2) {
            s.insert(k);
        }
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let s = Arc::clone(&s);
                std::thread::spawn(move || {
                    let mut x: u64 = (t + 1) * 0x2545f491;
                    for _ in 0..400 {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = (x % 128) as i64;
                        match x % 3 {
                            0 => {
                                s.insert(k);
                            }
                            1 => {
                                s.remove(&k);
                            }
                            _ => {
                                s.contains(&k);
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let n = s.len();
        let found = (0..128).filter(|k| s.contains(k)).count();
        assert_eq!(n, found, "len disagrees with membership scan");
    }

    #[test]
    fn all_trees_have_set_semantics() {
        set_semantics::<CoarseBst<i64>>();
        set_semantics::<FineBst<i64>>();
        set_semantics::<LockFreeBst<i64>>();
    }

    #[test]
    fn all_trees_survive_shuffled_workouts() {
        shuffled_workout::<CoarseBst<i64>>();
        shuffled_workout::<FineBst<i64>>();
        shuffled_workout::<LockFreeBst<i64>>();
    }

    #[test]
    fn all_trees_survive_concurrent_mixes() {
        concurrent_mixed::<CoarseBst<i64>>();
        concurrent_mixed::<FineBst<i64>>();
        concurrent_mixed::<LockFreeBst<i64>>();
    }
}

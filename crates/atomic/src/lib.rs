//! Instrumented atomics facade for the cds family.
//!
//! Every crate in the workspace performs its atomic operations through the
//! types in this crate rather than `std::sync::atomic` directly (a repo
//! lint enforces this). In a default build each wrapper is a transparent
//! `#[inline(always)]` pass-through with zero cost — the types have the
//! same layout as their std counterparts and every method compiles to the
//! single underlying instruction.
//!
//! Under the `stress` feature each operation additionally reports itself
//! to an injectable hook table ([`stress::set_hooks`]) carrying its
//! address, access class, and [`Ordering`]. The hooks are registered by
//! `cds-core`'s stress scheduler at install time; inside a weak-memory
//! explore window they turn every atomic access into a tagged yield point
//! and may *rewrite the value returned by a load* so the explorer can
//! enumerate C11-ordering-visible behaviors (stale reads permitted by
//! `Relaxed`/`Acquire` annotations), not just thread interleavings.
//!
//! Two invariants keep the instrumented world coherent:
//!
//! - The real `std` atomic always executes, so real memory always holds
//!   the *latest* value in modification order. Only load results are
//!   virtualized; RMWs (which C11 requires to read the latest write)
//!   always observe real memory, so the model and the machine agree on
//!   every CAS outcome.
//! - Values cross the hook boundary as `u64`, which every wrapped
//!   primitive round-trips through losslessly on 64-bit targets.
//!
//! Infrastructure that must *not* be modeled (the scheduler itself,
//! telemetry counters, test harness bookkeeping) uses [`raw`], a plain
//! re-export of `std::sync::atomic`, so its traffic never perturbs
//! explored schedules.

pub use std::sync::atomic::Ordering;

/// Plain `std::sync::atomic` re-export for infrastructure that must stay
/// invisible to the stress scheduler: the scheduler's own state, cds-obs
/// telemetry shards, lincheck recorders, and bench drivers. Using `raw`
/// instead of importing `std::sync::atomic` keeps the repo lint
/// meaningful — every appearance of the std path outside this crate is a
/// bug, while `raw` users are self-documenting exceptions.
pub mod raw {
    pub use std::sync::atomic::*;
}

#[cfg(feature = "stress")]
pub mod stress;

#[cfg(feature = "stress")]
use stress::hook_table as hooks;

macro_rules! int_atomic {
    ($(#[$attr:meta])* $name:ident, $raw:ident, $prim:ty) => {
        $(#[$attr])*
        #[repr(transparent)]
        #[derive(Default)]
        pub struct $name {
            inner: std::sync::atomic::$raw,
        }

        impl $name {
            #[inline(always)]
            pub const fn new(v: $prim) -> Self {
                Self { inner: std::sync::atomic::$raw::new(v) }
            }

            #[inline(always)]
            #[cfg_attr(not(feature = "stress"), allow(dead_code))]
            fn addr(&self) -> usize {
                self as *const _ as usize
            }

            /// Consumes the atomic; exclusive access, never instrumented.
            #[inline(always)]
            pub fn into_inner(self) -> $prim {
                self.inner.into_inner()
            }

            /// Mutable access; exclusive, never instrumented.
            #[inline(always)]
            pub fn get_mut(&mut self) -> &mut $prim {
                self.inner.get_mut()
            }

            #[inline(always)]
            pub fn load(&self, order: Ordering) -> $prim {
                #[cfg(feature = "stress")]
                if let Some(h) = hooks() {
                    (h.pre)(self.addr(), false, order);
                    let cur = self.inner.load(order);
                    return (h.load)(self.addr(), order, cur as u64) as $prim;
                }
                self.inner.load(order)
            }

            #[inline(always)]
            pub fn store(&self, val: $prim, order: Ordering) {
                #[cfg(feature = "stress")]
                if let Some(h) = hooks() {
                    (h.pre)(self.addr(), true, order);
                    let prev = match order {
                        Ordering::Release | Ordering::Relaxed => {
                            // The model needs the superseded value for
                            // lazy location init; a plain swap with the
                            // same ordering is equivalent here.
                            self.inner.swap(val, order)
                        }
                        _ => self.inner.swap(val, Ordering::SeqCst),
                    };
                    (h.store)(self.addr(), order, prev as u64, val as u64);
                    return;
                }
                self.inner.store(val, order)
            }

            #[inline(always)]
            pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                #[cfg(feature = "stress")]
                if let Some(h) = hooks() {
                    (h.pre)(self.addr(), true, order);
                    let prev = self.inner.swap(val, order);
                    (h.rmw)(self.addr(), order, prev as u64, Some(val as u64));
                    return prev;
                }
                self.inner.swap(val, order)
            }

            #[inline(always)]
            pub fn compare_exchange(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                #[cfg(feature = "stress")]
                if let Some(h) = hooks() {
                    (h.pre)(self.addr(), true, success);
                    return match self.inner.compare_exchange(current, new, success, failure) {
                        Ok(prev) => {
                            (h.rmw)(self.addr(), success, prev as u64, Some(new as u64));
                            Ok(prev)
                        }
                        Err(prev) => {
                            (h.rmw)(self.addr(), failure, prev as u64, None);
                            Err(prev)
                        }
                    };
                }
                self.inner.compare_exchange(current, new, success, failure)
            }

            #[inline(always)]
            pub fn compare_exchange_weak(
                &self,
                current: $prim,
                new: $prim,
                success: Ordering,
                failure: Ordering,
            ) -> Result<$prim, $prim> {
                #[cfg(feature = "stress")]
                if let Some(h) = hooks() {
                    (h.pre)(self.addr(), true, success);
                    return match self.inner.compare_exchange_weak(current, new, success, failure) {
                        Ok(prev) => {
                            (h.rmw)(self.addr(), success, prev as u64, Some(new as u64));
                            Ok(prev)
                        }
                        Err(prev) => {
                            (h.rmw)(self.addr(), failure, prev as u64, None);
                            Err(prev)
                        }
                    };
                }
                self.inner.compare_exchange_weak(current, new, success, failure)
            }

            int_atomic!(@rmw $prim, fetch_add, wrapping_add);
            int_atomic!(@rmw $prim, fetch_sub, wrapping_sub);

            #[inline(always)]
            pub fn fetch_and(&self, val: $prim, order: Ordering) -> $prim {
                #[cfg(feature = "stress")]
                if let Some(h) = hooks() {
                    (h.pre)(self.addr(), true, order);
                    let prev = self.inner.fetch_and(val, order);
                    (h.rmw)(self.addr(), order, prev as u64, Some((prev & val) as u64));
                    return prev;
                }
                self.inner.fetch_and(val, order)
            }

            #[inline(always)]
            pub fn fetch_or(&self, val: $prim, order: Ordering) -> $prim {
                #[cfg(feature = "stress")]
                if let Some(h) = hooks() {
                    (h.pre)(self.addr(), true, order);
                    let prev = self.inner.fetch_or(val, order);
                    (h.rmw)(self.addr(), order, prev as u64, Some((prev | val) as u64));
                    return prev;
                }
                self.inner.fetch_or(val, order)
            }

            #[inline(always)]
            pub fn fetch_max(&self, val: $prim, order: Ordering) -> $prim {
                #[cfg(feature = "stress")]
                if let Some(h) = hooks() {
                    (h.pre)(self.addr(), true, order);
                    let prev = self.inner.fetch_max(val, order);
                    let new = if val > prev { val } else { prev };
                    (h.rmw)(self.addr(), order, prev as u64, Some(new as u64));
                    return prev;
                }
                self.inner.fetch_max(val, order)
            }
        }

        impl std::fmt::Debug for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                // Uninstrumented read: Debug output must never influence
                // or participate in an explored schedule.
                std::fmt::Debug::fmt(&self.inner, f)
            }
        }

        impl From<$prim> for $name {
            #[inline(always)]
            fn from(v: $prim) -> Self {
                Self::new(v)
            }
        }
    };
    (@rmw $prim:ty, $method:ident, $combine:ident) => {
        #[inline(always)]
        pub fn $method(&self, val: $prim, order: Ordering) -> $prim {
            #[cfg(feature = "stress")]
            if let Some(h) = hooks() {
                (h.pre)(self.addr(), true, order);
                let prev = self.inner.$method(val, order);
                (h.rmw)(self.addr(), order, prev as u64, Some(prev.$combine(val) as u64));
                return prev;
            }
            self.inner.$method(val, order)
        }
    };
}

int_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicUsize`].
    AtomicUsize, AtomicUsize, usize
);
int_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicIsize`].
    AtomicIsize, AtomicIsize, isize
);
int_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicU64`].
    AtomicU64, AtomicU64, u64
);
int_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicI64`].
    AtomicI64, AtomicI64, i64
);
int_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicU32`].
    AtomicU32, AtomicU32, u32
);
int_atomic!(
    /// Instrumented [`std::sync::atomic::AtomicU8`].
    AtomicU8, AtomicU8, u8
);

/// Instrumented [`std::sync::atomic::AtomicBool`]. Values cross the hook
/// boundary as `0`/`1`.
#[repr(transparent)]
#[derive(Default)]
pub struct AtomicBool {
    inner: std::sync::atomic::AtomicBool,
}

impl AtomicBool {
    #[inline(always)]
    pub const fn new(v: bool) -> Self {
        Self {
            inner: std::sync::atomic::AtomicBool::new(v),
        }
    }

    #[inline(always)]
    #[cfg_attr(not(feature = "stress"), allow(dead_code))]
    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    #[inline(always)]
    pub fn into_inner(self) -> bool {
        self.inner.into_inner()
    }

    #[inline(always)]
    pub fn get_mut(&mut self) -> &mut bool {
        self.inner.get_mut()
    }

    #[inline(always)]
    pub fn load(&self, order: Ordering) -> bool {
        #[cfg(feature = "stress")]
        if let Some(h) = hooks() {
            (h.pre)(self.addr(), false, order);
            let cur = self.inner.load(order);
            return (h.load)(self.addr(), order, cur as u64) != 0;
        }
        self.inner.load(order)
    }

    #[inline(always)]
    pub fn store(&self, val: bool, order: Ordering) {
        #[cfg(feature = "stress")]
        if let Some(h) = hooks() {
            (h.pre)(self.addr(), true, order);
            let prev = match order {
                Ordering::Release | Ordering::Relaxed => self.inner.swap(val, order),
                _ => self.inner.swap(val, Ordering::SeqCst),
            };
            (h.store)(self.addr(), order, prev as u64, val as u64);
            return;
        }
        self.inner.store(val, order)
    }

    #[inline(always)]
    pub fn swap(&self, val: bool, order: Ordering) -> bool {
        #[cfg(feature = "stress")]
        if let Some(h) = hooks() {
            (h.pre)(self.addr(), true, order);
            let prev = self.inner.swap(val, order);
            (h.rmw)(self.addr(), order, prev as u64, Some(val as u64));
            return prev;
        }
        self.inner.swap(val, order)
    }

    #[inline(always)]
    pub fn compare_exchange(
        &self,
        current: bool,
        new: bool,
        success: Ordering,
        failure: Ordering,
    ) -> Result<bool, bool> {
        #[cfg(feature = "stress")]
        if let Some(h) = hooks() {
            (h.pre)(self.addr(), true, success);
            return match self.inner.compare_exchange(current, new, success, failure) {
                Ok(prev) => {
                    (h.rmw)(self.addr(), success, prev as u64, Some(new as u64));
                    Ok(prev)
                }
                Err(prev) => {
                    (h.rmw)(self.addr(), failure, prev as u64, None);
                    Err(prev)
                }
            };
        }
        self.inner.compare_exchange(current, new, success, failure)
    }

    #[inline(always)]
    pub fn fetch_and(&self, val: bool, order: Ordering) -> bool {
        #[cfg(feature = "stress")]
        if let Some(h) = hooks() {
            (h.pre)(self.addr(), true, order);
            let prev = self.inner.fetch_and(val, order);
            (h.rmw)(self.addr(), order, prev as u64, Some((prev & val) as u64));
            return prev;
        }
        self.inner.fetch_and(val, order)
    }

    #[inline(always)]
    pub fn fetch_or(&self, val: bool, order: Ordering) -> bool {
        #[cfg(feature = "stress")]
        if let Some(h) = hooks() {
            (h.pre)(self.addr(), true, order);
            let prev = self.inner.fetch_or(val, order);
            (h.rmw)(self.addr(), order, prev as u64, Some((prev | val) as u64));
            return prev;
        }
        self.inner.fetch_or(val, order)
    }
}

impl std::fmt::Debug for AtomicBool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.inner, f)
    }
}

impl From<bool> for AtomicBool {
    #[inline(always)]
    fn from(v: bool) -> Self {
        Self::new(v)
    }
}

/// Instrumented [`std::sync::atomic::AtomicPtr`]. Pointers cross the hook
/// boundary as their address bits.
#[repr(transparent)]
pub struct AtomicPtr<T> {
    inner: std::sync::atomic::AtomicPtr<T>,
}

impl<T> AtomicPtr<T> {
    #[inline(always)]
    pub const fn new(p: *mut T) -> Self {
        Self {
            inner: std::sync::atomic::AtomicPtr::new(p),
        }
    }

    #[inline(always)]
    #[cfg_attr(not(feature = "stress"), allow(dead_code))]
    fn addr(&self) -> usize {
        self as *const _ as usize
    }

    #[inline(always)]
    pub fn into_inner(self) -> *mut T {
        self.inner.into_inner()
    }

    #[inline(always)]
    pub fn get_mut(&mut self) -> &mut *mut T {
        self.inner.get_mut()
    }

    #[inline(always)]
    pub fn load(&self, order: Ordering) -> *mut T {
        #[cfg(feature = "stress")]
        if let Some(h) = hooks() {
            (h.pre)(self.addr(), false, order);
            let cur = self.inner.load(order);
            return (h.load)(self.addr(), order, cur as usize as u64) as usize as *mut T;
        }
        self.inner.load(order)
    }

    #[inline(always)]
    pub fn store(&self, val: *mut T, order: Ordering) {
        #[cfg(feature = "stress")]
        if let Some(h) = hooks() {
            (h.pre)(self.addr(), true, order);
            let prev = match order {
                Ordering::Release | Ordering::Relaxed => self.inner.swap(val, order),
                _ => self.inner.swap(val, Ordering::SeqCst),
            };
            (h.store)(
                self.addr(),
                order,
                prev as usize as u64,
                val as usize as u64,
            );
            return;
        }
        self.inner.store(val, order)
    }

    #[inline(always)]
    pub fn swap(&self, val: *mut T, order: Ordering) -> *mut T {
        #[cfg(feature = "stress")]
        if let Some(h) = hooks() {
            (h.pre)(self.addr(), true, order);
            let prev = self.inner.swap(val, order);
            (h.rmw)(
                self.addr(),
                order,
                prev as usize as u64,
                Some(val as usize as u64),
            );
            return prev;
        }
        self.inner.swap(val, order)
    }

    #[inline(always)]
    pub fn compare_exchange(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        #[cfg(feature = "stress")]
        if let Some(h) = hooks() {
            (h.pre)(self.addr(), true, success);
            return match self.inner.compare_exchange(current, new, success, failure) {
                Ok(prev) => {
                    (h.rmw)(
                        self.addr(),
                        success,
                        prev as usize as u64,
                        Some(new as usize as u64),
                    );
                    Ok(prev)
                }
                Err(prev) => {
                    (h.rmw)(self.addr(), failure, prev as usize as u64, None);
                    Err(prev)
                }
            };
        }
        self.inner.compare_exchange(current, new, success, failure)
    }

    #[inline(always)]
    pub fn compare_exchange_weak(
        &self,
        current: *mut T,
        new: *mut T,
        success: Ordering,
        failure: Ordering,
    ) -> Result<*mut T, *mut T> {
        #[cfg(feature = "stress")]
        if let Some(h) = hooks() {
            (h.pre)(self.addr(), true, success);
            return match self
                .inner
                .compare_exchange_weak(current, new, success, failure)
            {
                Ok(prev) => {
                    (h.rmw)(
                        self.addr(),
                        success,
                        prev as usize as u64,
                        Some(new as usize as u64),
                    );
                    Ok(prev)
                }
                Err(prev) => {
                    (h.rmw)(self.addr(), failure, prev as usize as u64, None);
                    Err(prev)
                }
            };
        }
        self.inner
            .compare_exchange_weak(current, new, success, failure)
    }
}

impl<T> Default for AtomicPtr<T> {
    #[inline(always)]
    fn default() -> Self {
        Self::new(std::ptr::null_mut())
    }
}

impl<T> std::fmt::Debug for AtomicPtr<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        std::fmt::Debug::fmt(&self.inner, f)
    }
}

/// Instrumented [`std::sync::atomic::fence`].
#[inline(always)]
pub fn fence(order: Ordering) {
    #[cfg(feature = "stress")]
    if let Some(h) = stress::hook_table() {
        (h.pre)(0, false, order);
        std::sync::atomic::fence(order);
        (h.fence)(order);
        return;
    }
    std::sync::atomic::fence(order)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_transparent() {
        use std::mem::{align_of, size_of};
        assert_eq!(
            size_of::<AtomicUsize>(),
            size_of::<std::sync::atomic::AtomicUsize>()
        );
        assert_eq!(
            align_of::<AtomicUsize>(),
            align_of::<std::sync::atomic::AtomicUsize>()
        );
        assert_eq!(
            size_of::<AtomicPtr<u8>>(),
            size_of::<std::sync::atomic::AtomicPtr<u8>>()
        );
        assert_eq!(size_of::<AtomicBool>(), 1);
    }

    #[test]
    fn passthrough_semantics() {
        let a = AtomicUsize::new(5);
        assert_eq!(a.load(Ordering::SeqCst), 5);
        a.store(7, Ordering::SeqCst);
        assert_eq!(a.swap(9, Ordering::SeqCst), 7);
        assert_eq!(
            a.compare_exchange(9, 11, Ordering::SeqCst, Ordering::SeqCst),
            Ok(9)
        );
        assert_eq!(
            a.compare_exchange(9, 13, Ordering::SeqCst, Ordering::SeqCst),
            Err(11)
        );
        assert_eq!(a.fetch_add(1, Ordering::SeqCst), 11);
        assert_eq!(a.fetch_sub(2, Ordering::SeqCst), 12);
        assert_eq!(a.into_inner(), 10);

        let b = AtomicBool::new(false);
        assert!(!b.swap(true, Ordering::SeqCst));
        assert!(b.fetch_and(false, Ordering::SeqCst));
        assert!(!b.load(Ordering::SeqCst));

        let mut x = 1u64;
        let p = AtomicPtr::new(&mut x as *mut u64);
        assert_eq!(p.load(Ordering::SeqCst), &mut x as *mut u64);
        fence(Ordering::SeqCst);

        let i = AtomicI64::new(-3);
        assert_eq!(i.fetch_add(1, Ordering::SeqCst), -3);
        assert_eq!(i.load(Ordering::SeqCst), -2);
    }
}

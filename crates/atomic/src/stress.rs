//! Injectable hook surface for the instrumented atomics.
//!
//! `cds-atomic` sits at the bottom of the crate DAG, below the stress
//! scheduler that wants to observe it, so the dependency is inverted the
//! same way `cds_sync::stress` inverts it for `Backoff`: the scheduler
//! (`cds-core/stress`) registers a [`AtomicHooks`] table at install time
//! via [`set_hooks`]. Until then — and, by the hook implementations' own
//! fast-path checks, outside weak-memory explore windows — every atomic
//! operation behaves exactly like its `std` counterpart.
//!
//! The `pre` hook fires *before* the real operation and is the tagged
//! yield point (it may park the thread while the explorer schedules
//! someone else). The value hooks (`load`/`store`/`rmw`/`fence`) fire
//! *after* the real operation, while the thread still holds the
//! scheduler's grant, and feed the weak-memory model; `load` returns the
//! value the caller must observe, which inside a weak window may be any
//! C11-permitted stale write rather than the latest one.
//!
//! [`publish_region`]/[`check_region`] support loom-style data-race
//! detection for the non-atomic payloads guarded by atomic publication
//! (`cds-reclaim`'s `Owned::into_shared` publishes, `Shared::deref`
//! checks).

use std::sync::OnceLock;

use crate::Ordering;

/// Hook table registered by the stress scheduler. All functions must be
/// cheap no-ops when no explore window is active.
pub struct AtomicHooks {
    /// Tagged yield point, fired before the real operation.
    /// `addr` is 0 for fences.
    pub pre: fn(addr: usize, is_write: bool, order: Ordering),
    /// A load observed `current` (the latest value); returns the value
    /// the caller must observe instead.
    pub load: fn(addr: usize, order: Ordering, current: u64) -> u64,
    /// A plain store replaced `prev` with `new`.
    pub store: fn(addr: usize, order: Ordering, prev: u64, new: u64),
    /// A read-modify-write observed `prev`; `new` is `Some` for the
    /// written value, or `None` for a failed compare-exchange (which
    /// C11 treats as a load of the latest value with the failure
    /// ordering).
    pub rmw: fn(addr: usize, order: Ordering, prev: u64, new: Option<u64>),
    /// A fence with the given ordering (fired after the real fence).
    pub fence: fn(order: Ordering),
    /// A heap region `[base, base + len)` was published to other threads.
    pub publish: fn(base: usize, len: usize),
    /// A non-atomic access to `[addr, addr + len)` is about to happen;
    /// the hook panics (deterministically) if the region's publishing
    /// store is not yet synchronized-to by the accessing thread.
    pub check: fn(addr: usize, len: usize),
}

static HOOKS: OnceLock<&'static AtomicHooks> = OnceLock::new();

/// Registers the hook table. First caller wins; later calls are ignored
/// (the scheduler may be installed from several tests in one process).
pub fn set_hooks(hooks: &'static AtomicHooks) {
    let _ = HOOKS.set(hooks);
}

#[inline(always)]
pub(crate) fn hook_table() -> Option<&'static AtomicHooks> {
    HOOKS.get().copied()
}

/// Reports that a heap region was made reachable from shared memory
/// (e.g. a node linked into a structure). No-op until hooks register.
#[inline]
pub fn publish_region(base: usize, len: usize) {
    if let Some(h) = hook_table() {
        (h.publish)(base, len);
    }
}

/// Checks that the current thread is synchronized with the publication
/// of `[addr, addr + len)` before a non-atomic access. No-op until hooks
/// register; panics deterministically on a detected race inside a weak
/// window with race detection enabled.
#[inline]
pub fn check_region(addr: usize, len: usize) {
    if let Some(h) = hook_table() {
        (h.check)(addr, len);
    }
}

use std::collections::BTreeSet;
use std::fmt;

use cds_core::ConcurrentPriorityQueue;
use parking_lot::Mutex;

/// A hand-rolled array binary min-heap.
struct MinHeap<T> {
    items: Vec<T>,
}

impl<T: Ord> MinHeap<T> {
    fn new() -> Self {
        MinHeap { items: Vec::new() }
    }

    fn push(&mut self, value: T) {
        self.items.push(value);
        self.sift_up(self.items.len() - 1);
    }

    fn pop(&mut self) -> Option<T> {
        if self.items.is_empty() {
            return None;
        }
        let last = self.items.len() - 1;
        self.items.swap(0, last);
        let min = self.items.pop();
        if !self.items.is_empty() {
            self.sift_down(0);
        }
        min
    }

    fn peek(&self) -> Option<&T> {
        self.items.first()
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.items[i] < self.items[parent] {
                self.items.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.items.len();
        loop {
            let (l, r) = (2 * i + 1, 2 * i + 2);
            let mut smallest = i;
            if l < n && self.items[l] < self.items[smallest] {
                smallest = l;
            }
            if r < n && self.items[r] < self.items[smallest] {
                smallest = r;
            }
            if smallest == i {
                return;
            }
            self.items.swap(i, smallest);
            i = smallest;
        }
    }
}

struct Inner<T> {
    heap: MinHeap<T>,
    /// Membership index giving the dictionary (no-duplicates) semantics.
    members: BTreeSet<T>,
}

/// A binary min-heap behind one mutex: the coarse-grained baseline of
/// experiment E8.
///
/// The heap itself is hand-rolled (sift-up/sift-down); a `BTreeSet` mirror
/// provides the duplicate check the
/// [`ConcurrentPriorityQueue`] dictionary semantics require.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentPriorityQueue;
/// use cds_prio::CoarseBinaryHeap;
///
/// let h = CoarseBinaryHeap::new();
/// h.insert(4);
/// h.insert(2);
/// assert_eq!(h.remove_min(), Some(2));
/// ```
pub struct CoarseBinaryHeap<T> {
    inner: Mutex<Inner<T>>,
}

impl<T: Ord> CoarseBinaryHeap<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        CoarseBinaryHeap {
            inner: Mutex::new(Inner {
                heap: MinHeap::new(),
                members: BTreeSet::new(),
            }),
        }
    }
}

impl<T: Ord> Default for CoarseBinaryHeap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Clone + Send> ConcurrentPriorityQueue<T> for CoarseBinaryHeap<T> {
    const NAME: &'static str = "coarse-heap";

    fn insert(&self, value: T) -> bool {
        let mut inner = self.inner.lock();
        if !inner.members.insert(value.clone()) {
            return false;
        }
        inner.heap.push(value);
        true
    }

    fn remove_min(&self) -> Option<T> {
        let mut inner = self.inner.lock();
        let min = inner.heap.pop()?;
        inner.members.remove(&min);
        Some(min)
    }

    fn peek_min(&self) -> Option<T> {
        self.inner.lock().heap.peek().cloned()
    }

    fn len(&self) -> usize {
        self.inner.lock().members.len()
    }
}

impl<T> fmt::Debug for CoarseBinaryHeap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CoarseBinaryHeap").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentPriorityQueue;

    #[test]
    fn heap_property_is_maintained() {
        let h = CoarseBinaryHeap::new();
        for k in [9, 4, 7, 1, 8, 2, 6, 3, 5] {
            h.insert(k);
        }
        let mut prev = i32::MIN;
        while let Some(k) = h.remove_min() {
            assert!(k > prev);
            prev = k;
        }
    }

    #[test]
    fn duplicates_rejected() {
        let h = CoarseBinaryHeap::new();
        assert!(h.insert(1));
        assert!(!h.insert(1));
        assert_eq!(h.len(), 1);
        assert_eq!(h.remove_min(), Some(1));
        assert!(h.insert(1), "reinsertion after removal must work");
    }

    #[test]
    fn peek_does_not_remove() {
        let h = CoarseBinaryHeap::new();
        h.insert(5);
        assert_eq!(h.peek_min(), Some(5));
        assert_eq!(h.len(), 1);
    }
}

use std::fmt;

use cds_core::{ConcurrentPriorityQueue, ConcurrentSet};
use cds_skiplist::LockFreeSkipList;

/// The Lotan–Shavit skiplist priority queue (IPDPS 2000).
///
/// A thin facade over [`LockFreeSkipList`]: the list is kept sorted by the
/// skiplist invariants, so `insert` is a skiplist insert and
/// [`remove_min`](ConcurrentPriorityQueue::remove_min) claims the first
/// unmarked bottom-level node with a CAS
/// ([`LockFreeSkipList::remove_min`]). Under contention, competing
/// `remove_min` callers that lose the claim race simply advance to the next
/// node, so the "hot head" spreads out along the list instead of
/// serializing.
///
/// See the crate docs for the quiescent-consistency caveat on
/// `remove_min`.
///
/// # Example
///
/// ```
/// use cds_core::ConcurrentPriorityQueue;
/// use cds_prio::SkipListPriorityQueue;
///
/// let pq = SkipListPriorityQueue::new();
/// pq.insert(2);
/// pq.insert(1);
/// assert_eq!(pq.remove_min(), Some(1));
/// ```
pub struct SkipListPriorityQueue<T> {
    list: LockFreeSkipList<T>,
}

impl<T: Ord> SkipListPriorityQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        SkipListPriorityQueue {
            list: LockFreeSkipList::new(),
        }
    }
}

impl<T: Ord> Default for SkipListPriorityQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Ord + Clone + Send + Sync> ConcurrentPriorityQueue<T> for SkipListPriorityQueue<T> {
    const NAME: &'static str = "skiplist";

    fn insert(&self, value: T) -> bool {
        ConcurrentSet::insert(&self.list, value)
    }

    fn remove_min(&self) -> Option<T> {
        self.list.remove_min()
    }

    fn peek_min(&self) -> Option<T> {
        self.list.min()
    }

    fn len(&self) -> usize {
        ConcurrentSet::len(&self.list)
    }
}

impl<T> fmt::Debug for SkipListPriorityQueue<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SkipListPriorityQueue")
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentPriorityQueue;
    use std::sync::Arc;

    #[test]
    fn interleaved_insert_and_remove_min() {
        let pq = SkipListPriorityQueue::new();
        pq.insert(10);
        pq.insert(5);
        assert_eq!(pq.remove_min(), Some(5));
        pq.insert(1);
        assert_eq!(pq.remove_min(), Some(1));
        assert_eq!(pq.remove_min(), Some(10));
        assert_eq!(pq.remove_min(), None);
    }

    #[test]
    fn producers_and_consumers() {
        let pq = Arc::new(SkipListPriorityQueue::new());
        const PER: i64 = 500;
        let producers: Vec<_> = (0..2)
            .map(|t| {
                let pq = Arc::clone(&pq);
                std::thread::spawn(move || {
                    for i in 0..PER {
                        assert!(pq.insert(t * PER + i));
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let pq = Arc::clone(&pq);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(k) = pq.remove_min() {
                        got.push(k);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<i64> = consumers
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..2 * PER).collect::<Vec<_>>());
    }
}

//! Concurrent priority queues.
//!
//! Two implementations of [`cds_core::ConcurrentPriorityQueue`]:
//!
//! * [`CoarseBinaryHeap`] — a binary min-heap behind one mutex: the E8
//!   baseline. Heaps resist fine-graining because every `remove_min`
//!   touches the root.
//! * [`SkipListPriorityQueue`] — the Lotan–Shavit construction (IPDPS
//!   2000): a lock-free skiplist is already sorted, so `remove_min` is
//!   "claim the first unmarked bottom-level node with a CAS". Concurrent
//!   `remove_min`s contend only briefly on the current minimum and then
//!   spread out along the list.
//!
//! # A note on linearizability
//!
//! The Lotan–Shavit queue is **quiescently consistent** rather than
//! linearizable for `remove_min`: two overlapping `remove_min` calls can
//! return keys out of order with respect to a concurrent `insert` of a
//! smaller key. This is the documented, published trade-off (making it
//! linearizable requires timestamping); the test suite therefore checks
//! the quiescent properties — no loss, no duplication, sorted drains when
//! sequential.
//!
//! # Example
//!
//! ```
//! use cds_core::ConcurrentPriorityQueue;
//! use cds_prio::SkipListPriorityQueue;
//!
//! let pq = SkipListPriorityQueue::new();
//! pq.insert(30u64);
//! pq.insert(10);
//! pq.insert(20);
//! assert_eq!(pq.remove_min(), Some(10));
//! assert_eq!(pq.peek_min(), Some(20));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod coarse;
mod skiplist_pq;

pub use coarse::CoarseBinaryHeap;
pub use skiplist_pq::SkipListPriorityQueue;

#[cfg(test)]
mod tests {
    use super::*;
    use cds_core::ConcurrentPriorityQueue;
    use std::sync::Arc;

    fn sequential_drain_is_sorted<P: ConcurrentPriorityQueue<i64> + Default>() {
        let p = P::default();
        assert!(p.is_empty());
        assert_eq!(p.remove_min(), None);
        for k in [7, 3, 9, 1, 5] {
            assert!(p.insert(k));
        }
        assert!(!p.insert(3), "duplicate insert must fail");
        assert_eq!(p.len(), 5);
        assert_eq!(p.peek_min(), Some(1));
        let mut out = Vec::new();
        while let Some(k) = p.remove_min() {
            out.push(k);
        }
        assert_eq!(out, vec![1, 3, 5, 7, 9]);
    }

    fn concurrent_no_loss_no_duplication<P: ConcurrentPriorityQueue<i64> + Default + 'static>() {
        let p = Arc::new(P::default());
        const N: i64 = 1_000;
        for k in 0..N {
            p.insert(k);
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let p = Arc::clone(&p);
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(k) = p.remove_min() {
                        got.push(k);
                    }
                    got
                })
            })
            .collect();
        let mut all: Vec<i64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..N).collect::<Vec<_>>());
    }

    #[test]
    fn both_queues_sort_sequentially() {
        sequential_drain_is_sorted::<CoarseBinaryHeap<i64>>();
        sequential_drain_is_sorted::<SkipListPriorityQueue<i64>>();
    }

    #[test]
    fn both_queues_survive_concurrent_drains() {
        concurrent_no_loss_no_duplication::<CoarseBinaryHeap<i64>>();
        concurrent_no_loss_no_duplication::<SkipListPriorityQueue<i64>>();
    }
}

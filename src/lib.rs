//! # cds — Concurrent Data Structures
//!
//! The facade crate for the `cds` family: re-exports every subcrate under
//! one roof. See the [README](https://example.com/cds) for the full tour
//! and `DESIGN.md` for the system inventory.
//!
//! | Module | Contents |
//! |---|---|
//! | [`core`] | The shared traits (`ConcurrentStack`, `ConcurrentQueue`, `ConcurrentSet`, `ConcurrentMap`, `ConcurrentPriorityQueue`, `ConcurrentCounter`) |
//! | [`sync`] | Spin locks (TAS/TTAS/ticket/CLH/MCS), `RwSpinLock`, `SeqLock`, `FlatCombining`, `Backoff`, `CachePadded` |
//! | [`reclaim`] | Epoch-based reclamation and hazard pointers (from scratch) |
//! | [`stack`] | Coarse, Treiber (epoch + hazard-pointer), elimination-backoff, flat-combining stacks |
//! | [`queue`] | Coarse, two-lock, flat-combining, Michael–Scott, bounded MPMC, SPSC ring, Chase–Lev deque |
//! | [`counter`] | Lock, atomic, sharded, combining-tree counters |
//! | [`list`] | The list ladder: coarse → hand-over-hand → optimistic → lazy → Harris–Michael |
//! | [`map`] | Coarse, striped, bucketed (Michael), split-ordered (Shalev–Shavit) hash tables |
//! | [`skiplist`] | Coarse, lazy, lock-free skiplists |
//! | [`tree`] | Coarse, fine-grained external, Ellen et al. lock-free BSTs |
//! | [`prio`] | Coarse binary heap, Lotan–Shavit skiplist priority queue |
//! | [`exec`] | Work-stealing thread pool on Chase–Lev deques (bounded injector + overflow, eventcount parking) |
//! | [`chan`] | Blocking MPMC channels (bounded/unbounded, two-phase close, timeouts, select) over the queue family |
//! | [`lincheck`] | History recording and Wing–Gong linearizability checking |
//!
//! # Example
//!
//! ```
//! use cds::core::ConcurrentMap;
//! use cds::map::SplitOrderedHashMap;
//!
//! let m = SplitOrderedHashMap::new();
//! m.insert("answer", 42);
//! assert_eq!(m.get(&"answer"), Some(42));
//! ```

#![warn(missing_docs)]

pub use cds_chan as chan;
pub use cds_core as core;
pub use cds_counter as counter;
pub use cds_exec as exec;
pub use cds_lincheck as lincheck;
pub use cds_list as list;
pub use cds_map as map;
pub use cds_prio as prio;
pub use cds_queue as queue;
pub use cds_reclaim as reclaim;
pub use cds_skiplist as skiplist;
pub use cds_stack as stack;
pub use cds_sync as sync;
pub use cds_tree as tree;

//! Repo lint: every crate performs its atomic operations through the
//! `cds-atomic` facade, never `std::sync::atomic` / `core::sync::atomic`
//! directly.
//!
//! Why this is load-bearing: the weak-memory explorer can only model (and
//! the region race detector can only police) traffic that goes through
//! the instrumented wrappers. A direct `std` atomic silently opts its
//! location out of exploration — schedules still enumerate, but the
//! ordering bugs the sweep exists to catch become invisible at exactly
//! that location. Infrastructure that *must* stay un-modeled (the stress
//! scheduler's own state, telemetry shards, test-harness bookkeeping)
//! uses `cds_atomic::raw`, which is a deliberate, greppable, self-
//! documenting exception — and is why the lint bans the std *path*
//! rather than atomics in general.
//!
//! The allowlist lives in `tests/atomics_allowlist.txt` (one
//! repo-relative path per line, `#` comments). Entries must exist and
//! must still contain a direct import, so the list cannot rot.

use std::path::{Path, PathBuf};

/// Files allowed to name `std::sync::atomic` directly.
const ALLOWLIST: &str = include_str!("atomics_allowlist.txt");

fn allowlisted() -> Vec<String> {
    ALLOWLIST
        .lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(String::from)
        .collect()
}

fn rust_sources(dir: &Path, out: &mut Vec<PathBuf>) {
    for entry in std::fs::read_dir(dir).expect("crates dir readable") {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            // Only library/binary sources are linted: `crates/*/src/**`.
            // Build outputs never appear there.
            rust_sources(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// True if `line` reaches for a std/core atomic path outside a comment.
/// Doc comments and `//` comments may mention the path (e.g. to explain
/// this very rule); code may not.
fn names_std_atomic(line: &str) -> bool {
    let code = line.split("//").next().unwrap_or("");
    code.contains("std::sync::atomic") || code.contains("core::sync::atomic")
}

#[test]
fn no_direct_std_atomics_outside_the_facade() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let allow = allowlisted();
    let mut sources = Vec::new();
    for entry in std::fs::read_dir(root.join("crates")).expect("crates/ readable") {
        let src = entry.expect("dir entry").path().join("src");
        if src.is_dir() {
            rust_sources(&src, &mut sources);
        }
    }
    assert!(
        sources.len() > 30,
        "lint walked suspiciously few files ({}); wrong directory?",
        sources.len()
    );

    let mut violations = Vec::new();
    let mut used_allow = vec![false; allow.len()];
    for path in &sources {
        let rel = path
            .strip_prefix(root)
            .expect("source under repo root")
            .to_string_lossy()
            .replace('\\', "/");
        let allowed = allow.iter().position(|a| *a == rel);
        let content = std::fs::read_to_string(path).expect("source readable");
        let mut hits = Vec::new();
        for (i, line) in content.lines().enumerate() {
            if names_std_atomic(line) {
                hits.push(i + 1);
            }
        }
        match allowed {
            Some(idx) if !hits.is_empty() => used_allow[idx] = true,
            Some(_) => violations.push(format!(
                "{rel}: allowlisted but has no direct std atomic import — remove it from \
                 tests/atomics_allowlist.txt"
            )),
            None => {
                for line in hits {
                    violations.push(format!(
                        "{rel}:{line}: direct std/core::sync::atomic use — go through \
                         `cds_atomic` (instrumented) or `cds_atomic::raw` (deliberately \
                         un-modeled infrastructure), or add the file to \
                         tests/atomics_allowlist.txt with a comment saying why"
                    ));
                }
            }
        }
    }
    for (idx, used) in used_allow.iter().enumerate() {
        if !used {
            violations.push(format!(
                "tests/atomics_allowlist.txt names `{}`, which does not exist or was never \
                 matched — stale entry",
                allow[idx]
            ));
        }
    }
    assert!(
        violations.is_empty(),
        "atomics lint failed:\n  {}",
        violations.join("\n  ")
    );
}

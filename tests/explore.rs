//! Bounded-exhaustive exploration sweep: every schedule of small fixed
//! windows, enumerated by `cds_lincheck::explore` (DFS over scheduling
//! decisions with sleep-set pruning), checked for linearizability.
//!
//! Two kinds of tests live here:
//!
//! * **Exhaustive windows** over correct structures (Treiber stack,
//!   Michael–Scott queue, Vyukov bounded queue, Chase–Lev deque, the
//!   resizing map across a live migration, the executor's eventcount
//!   protocol, and the blocking channel's send/close and recv/close
//!   interleavings). Each pins its explored-schedule count against
//!   `tests/explore_baseline.txt`: the DFS is fully deterministic, so a
//!   count change means the yield-point surface or the pruning relation
//!   changed. Counts may only change together with a
//!   [`TRACE_FORMAT_VERSION`] bump (which unpins them until the baseline
//!   is re-recorded); a silent drop of more than 10% is treated as lost
//!   coverage and fails CI.
//!
//! * **Planted-regression known-answer tests**: the capacity-1
//!   `BoundedQueue` overwrite, the resizing map's migration-gap race,
//!   and the channel close path that skips its final drain dequeue — the
//!   first two real bugs fixed in earlier revisions, the third the race
//!   the close protocol exists to prevent — are (re-)armed behind
//!   stress-only toggles, and `explore` must find each one
//!   *deterministically* (no seed anywhere), ddmin-shrink the failing
//!   window, and replay its schedule byte-identically.

use cds_atomic::{AtomicBool, Ordering};
use std::collections::VecDeque;
use std::hash::BuildHasher;

use cds_core::{ConcurrentQueue, ConcurrentStack};
use cds_lincheck::explore::{
    explore, replay_schedule, ExploreError, ExploreOptions, ExploreReport, OnStuck,
};
use cds_lincheck::specs::{
    ChanOp, ChanRes, ChannelSpec, DequeOp, DequeRes, DequeSpec, EventcountOp, EventcountRes,
    EventcountSpec, MapOp, MapRes, MapSpec, QueueOp, QueueRes, QueueSpec, SetOp, SetSpec, StackOp,
    StackRes, StackSpec,
};
use cds_lincheck::stress::{stress, StressOptions};
use cds_lincheck::trace::{Trace, TRACE_FORMAT_VERSION};
use cds_lincheck::{check_linearizable, Spec};

/// The pinned-count table, compiled in so the test cannot silently run
/// against a missing file. Format: `key=value` lines, `#` comments; the
/// `version` key names the [`TRACE_FORMAT_VERSION`] the counts were
/// recorded under.
const BASELINE: &str = include_str!("explore_baseline.txt");

/// Result of looking a window key up in a baseline file.
enum Pin {
    /// The baseline's version matches; the count is pinned to this value.
    Pinned(u64),
    /// The counts are unpinned; the string is the actionable diagnostic
    /// explaining why and how to re-pin them.
    Unpinned(String),
}

/// Parses `content` (the `key=value` baseline format) and looks up `key`.
///
/// Counts only pin when the file's `version` stamp equals the running
/// [`TRACE_FORMAT_VERSION`]: a version bump deliberately unpins every
/// window until the baseline is re-recorded, and the diagnostic names the
/// exact command that does so.
fn lookup(content: &str, key: &str) -> Pin {
    let mut version: Option<u64> = None;
    let mut value: Option<u64> = None;
    for line in content.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (k, v) = line.split_once('=').expect("baseline line is key=value");
        let v: u64 = v.trim().parse().expect("baseline value is an integer");
        if k.trim() == "version" {
            version = Some(v);
        } else if k.trim() == key {
            value = Some(v);
        }
    }
    if version != Some(u64::from(TRACE_FORMAT_VERSION)) {
        return Pin::Unpinned(format!(
            "tests/explore_baseline.txt is stamped version={} but this build's \
             TRACE_FORMAT_VERSION={TRACE_FORMAT_VERSION}; `{key}` (and every other window) is \
             unpinned until the baseline is re-recorded. Run \
             `CDS_EXPLORE_BLESS=1 cargo test --features stress --test explore` to regenerate \
             it deterministically, review the diff, and commit it.",
            version.map_or("<missing>".into(), |v| v.to_string()),
        ));
    }
    Pin::Pinned(value.unwrap_or_else(|| {
        panic!(
            "tests/explore_baseline.txt has no `{key}` entry; run \
             `CDS_EXPLORE_BLESS=1 cargo test --features stress --test explore` to add it"
        )
    }))
}

fn baseline(key: &str) -> Pin {
    lookup(BASELINE, key)
}

/// True when this run should *record* counts instead of asserting them.
fn blessing() -> bool {
    std::env::var_os("CDS_EXPLORE_BLESS").is_some_and(|v| v == "1")
}

/// Rewrites `key=schedules` (and the `version` stamp) into
/// `tests/explore_baseline.txt`, preserving comments and line order;
/// unknown keys are appended. Each window's count is deterministic and
/// each bless touches only its own key, so the regenerated file is
/// identical no matter how the test harness orders or parallelizes the
/// windows.
fn bless(key: &str, schedules: u64) {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    let _guard = LOCK.lock().unwrap();
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/explore_baseline.txt");
    let content = std::fs::read_to_string(path).expect("baseline file readable for blessing");
    let mut out = String::new();
    let mut wrote_key = false;
    for line in content.lines() {
        let trimmed = line.trim();
        let k = trimmed.split_once('=').map(|(k, _)| k.trim());
        if k == Some("version") {
            out.push_str(&format!("version={TRACE_FORMAT_VERSION}\n"));
        } else if k == Some(key) {
            out.push_str(&format!("{key}={schedules}\n"));
            wrote_key = true;
        } else {
            out.push_str(line);
            out.push('\n');
        }
    }
    if !wrote_key {
        out.push_str(&format!("{key}={schedules}\n"));
    }
    std::fs::write(path, out).expect("baseline file writable for blessing");
    eprintln!("explore_baseline: blessed {key}={schedules} (version {TRACE_FORMAT_VERSION})");
}

/// Asserts an exhaustive window's coverage against the pinned baseline.
fn assert_pinned(key: &str, report: &ExploreReport) {
    assert!(report.exhausted, "`{key}` hit max_executions: {report:?}");
    check_pin(key, report);
}

/// Like [`assert_pinned`] but for a window whose full schedule space
/// exceeds its execution budget (the resizing-map migration: lock-convoy
/// branching puts it in the millions). The DFS is deterministic, so the
/// first `max_executions` executions are a stable prefix and the schedule
/// count over that prefix pins exactly like an exhaustive one. The cap is
/// logged so the bounded coverage is never mistaken for exhaustion.
fn assert_pinned_capped(key: &str, report: &ExploreReport, opts: &ExploreOptions) {
    if report.exhausted {
        // Better pruning (or a smaller window) made the cap non-binding;
        // the pin below still applies, but the window could graduate to
        // `assert_pinned`.
        eprintln!(
            "explore: `{key}` now exhausts below its cap of {} executions",
            opts.max_executions
        );
    } else {
        assert_eq!(
            report.executions, opts.max_executions,
            "`{key}` stopped early without exhausting: {report:?}"
        );
        eprintln!(
            "explore: `{key}` coverage capped at {} executions (schedule space exceeds the budget)",
            opts.max_executions
        );
    }
    check_pin(key, report);
}

fn check_pin(key: &str, report: &ExploreReport) {
    assert!(
        report.schedules >= 2,
        "`{key}` explored too little: {report:?}"
    );
    if blessing() {
        bless(key, report.schedules);
        return;
    }
    match baseline(key) {
        Pin::Pinned(expected) => {
            if report.schedules * 10 < expected * 9 {
                panic!(
                    "`{key}` explored-schedule count dropped >10% ({} -> {}): coverage was \
                     lost. If the yield-point surface or independence relation changed \
                     intentionally, bump TRACE_FORMAT_VERSION and re-record \
                     tests/explore_baseline.txt. {report:?}",
                    expected, report.schedules
                );
            }
            assert_eq!(
                report.schedules, expected,
                "`{key}` explored-schedule count changed (pinned {expected}); update \
                 tests/explore_baseline.txt if the change is intentional. {report:?}"
            );
        }
        Pin::Unpinned(why) => {
            eprintln!(
                "explore_baseline: `{key}` unpinned ({why}); observed schedules={} \
                 redundant={} stuck={} executions={}",
                report.schedules, report.redundant, report.stuck, report.executions
            );
        }
    }
}

#[test]
fn version_mismatched_baseline_gives_actionable_diagnostic() {
    // A stale baseline must not silently pin or silently pass: the lookup
    // reports *why* the counts are unpinned and the exact bless command.
    let stale = format!("version={}\ntreiber_stack=15\n", TRACE_FORMAT_VERSION - 1);
    match lookup(&stale, "treiber_stack") {
        Pin::Unpinned(msg) => {
            assert!(
                msg.contains(&format!("version={}", TRACE_FORMAT_VERSION - 1)),
                "{msg}"
            );
            assert!(
                msg.contains(&format!("TRACE_FORMAT_VERSION={TRACE_FORMAT_VERSION}")),
                "{msg}"
            );
            assert!(msg.contains("CDS_EXPLORE_BLESS=1"), "{msg}");
        }
        Pin::Pinned(v) => panic!("stale baseline pinned a count ({v}) instead of diagnosing"),
    }
    // A baseline with no version stamp at all is equally stale.
    match lookup("treiber_stack=15\n", "treiber_stack") {
        Pin::Unpinned(msg) => assert!(msg.contains("<missing>"), "{msg}"),
        Pin::Pinned(v) => panic!("unversioned baseline pinned a count ({v})"),
    }
    // The checked-in baseline matches the running version.
    match lookup(BASELINE, "treiber_stack") {
        Pin::Pinned(_) => {}
        Pin::Unpinned(why) => panic!("checked-in baseline is stale: {why}"),
    }
}

fn opts() -> ExploreOptions {
    ExploreOptions {
        weak_memory: false,
        weak_window: 4,
        detect_races: false,
        max_steps: 2_000,
        max_executions: 200_000,
        on_stuck: OnStuck::Fail,
    }
}

// ---------------------------------------------------------------------
// Exhaustive windows over correct structures.
// ---------------------------------------------------------------------

#[test]
fn explore_treiber_stack_window() {
    let ops = [vec![StackOp::Push(1), StackOp::Pop], vec![StackOp::Push(2)]];
    let report = explore(
        StackSpec::<u64>::default(),
        &opts(),
        &ops,
        cds_stack::TreiberStack::<u64>::new,
        |s, op| match op {
            StackOp::Push(v) => {
                s.push(*v);
                StackRes::Pushed
            }
            StackOp::Pop => StackRes::Popped(s.pop()),
        },
    )
    .unwrap_or_else(|f| panic!("treiber stack window not linearizable: {f:?}"));
    assert_pinned("treiber_stack", &report);
}

#[test]
fn explore_ms_queue_window() {
    let ops = [vec![QueueOp::Enqueue(1)], vec![QueueOp::Dequeue]];
    let report = explore(
        QueueSpec::<u64>::default(),
        &opts(),
        &ops,
        cds_queue::MsQueue::<u64>::new,
        |q, op| match op {
            QueueOp::Enqueue(v) => {
                q.enqueue(*v);
                QueueRes::Enqueued
            }
            QueueOp::Dequeue => QueueRes::Dequeued(q.dequeue()),
        },
    )
    .unwrap_or_else(|f| panic!("ms queue window not linearizable: {f:?}"));
    assert_pinned("ms_queue", &report);
}

// ---------------------------------------------------------------------
// Bounded queue: cap-2 exhaustive window, then the planted cap-1
// overwrite regression. One test so the claim-window toggle can never
// perturb the untoggled window from a concurrently running test.
// ---------------------------------------------------------------------

/// Try-semantics bounded-queue operations: `try_enqueue` can observe a
/// full queue, so the result carries success/failure and the spec models
/// the capacity.
#[derive(Debug, Clone, PartialEq, Eq)]
enum TryQueueOp {
    Enq(u64),
    Deq,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TryQueueRes {
    Enq(bool),
    Deq(Option<u64>),
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct TryQueueSpec {
    items: VecDeque<u64>,
    cap: usize,
}

impl TryQueueSpec {
    fn with_capacity(cap: usize) -> Self {
        TryQueueSpec {
            items: VecDeque::new(),
            cap,
        }
    }
}

impl Spec for TryQueueSpec {
    type Op = TryQueueOp;
    type Res = TryQueueRes;

    fn apply(&mut self, op: &TryQueueOp) -> TryQueueRes {
        match op {
            TryQueueOp::Enq(v) => {
                if self.items.len() < self.cap {
                    self.items.push_back(*v);
                    TryQueueRes::Enq(true)
                } else {
                    TryQueueRes::Enq(false)
                }
            }
            TryQueueOp::Deq => TryQueueRes::Deq(self.items.pop_front()),
        }
    }
}

fn exec_try_queue(q: &cds_queue::BoundedQueue<u64>, op: &TryQueueOp) -> TryQueueRes {
    match op {
        TryQueueOp::Enq(v) => TryQueueRes::Enq(q.try_enqueue(*v).is_ok()),
        TryQueueOp::Deq => TryQueueRes::Deq(q.try_dequeue()),
    }
}

#[test]
fn explore_bounded_queue_window_and_cap1_regression() {
    // Exhaustive cap-2 window, plant off: two producers' worth of traffic
    // never exceeds capacity, every schedule must linearize.
    let ops = [
        vec![TryQueueOp::Enq(1), TryQueueOp::Enq(2)],
        vec![TryQueueOp::Deq],
    ];
    let report = explore(
        TryQueueSpec::with_capacity(2),
        &opts(),
        &ops,
        || cds_queue::BoundedQueue::<u64>::with_capacity(2),
        exec_try_queue,
    )
    .unwrap_or_else(|f| panic!("bounded queue cap-2 window not linearizable: {f:?}"));
    assert_pinned("bounded_queue_cap2", &report);

    // The planted regression: with a single slot (capacity floor bypassed)
    // and the claim→publish windows made preemptible, a producer can claim
    // the slot a dequeuer is still reading and overwrite the undelivered
    // value. `explore` must find it with zero randomness.
    let prev = cds_queue::set_claim_window_yields(true);
    assert!(!prev, "claim-window toggle unexpectedly already set");
    let ops = [
        vec![TryQueueOp::Enq(1), TryQueueOp::Enq(2)],
        vec![TryQueueOp::Deq, TryQueueOp::Deq],
    ];
    let spec = TryQueueSpec::with_capacity(1);
    let setup = || cds_queue::BoundedQueue::<u64>::with_capacity_unchecked(1);
    let result = explore(
        spec.clone(),
        &ExploreOptions {
            on_stuck: OnStuck::Continue,
            ..opts()
        },
        &ops,
        setup,
        exec_try_queue,
    );
    let err = result.expect_err("explore missed the planted capacity-1 overwrite");
    let (trace, history, minimized) = match *err {
        ExploreError::NonLinearizable {
            trace,
            history,
            minimized,
        } => (trace, history, minimized),
        other => panic!("expected NonLinearizable, got {other:?}"),
    };
    // The ddmin shrink produced a smaller, still-failing core.
    assert!(!minimized.is_empty());
    assert!(minimized.len() <= history.len());
    assert!(!check_linearizable(spec.clone(), &minimized));
    // The trace is a v2 (explicit step list) line that round-trips.
    let line = trace.to_string();
    assert!(
        line.starts_with("cds-trace v2 "),
        "unexpected trace: {line}"
    );
    assert_eq!(line.parse::<Trace>().unwrap(), trace);
    // And replaying it reproduces the identical history, byte for byte.
    let steps = match &trace {
        Trace::V2 { steps, .. } => steps.clone(),
        other => panic!("expected a v2 trace, got {other:?}"),
    };
    let replayed = replay_schedule(&ops, &steps, &[], &opts(), setup, exec_try_queue)
        .expect("replay of the failing schedule diverged");
    assert_eq!(replayed, history, "replay was not byte-identical");
    let prev = cds_queue::set_claim_window_yields(false);
    assert!(prev);
}

#[test]
fn explore_two_lock_queue_window() {
    // Lock-based structure: the window explores every interleaving of the
    // head/tail lock acquisitions (through the instrumented parking_lot
    // shim), proving the two-lock protocol linearizable, not just
    // deadlock-free.
    let ops = [
        vec![QueueOp::Enqueue(1), QueueOp::Dequeue],
        vec![QueueOp::Enqueue(2)],
    ];
    let report = explore(
        QueueSpec::<u64>::default(),
        &opts(),
        &ops,
        cds_queue::TwoLockQueue::<u64>::new,
        |q, op| match op {
            QueueOp::Enqueue(v) => {
                q.enqueue(*v);
                QueueRes::Enqueued
            }
            QueueOp::Dequeue => QueueRes::Dequeued(q.dequeue()),
        },
    )
    .unwrap_or_else(|f| panic!("two-lock queue window not linearizable: {f:?}"));
    assert_pinned("two_lock_queue", &report);
}

#[test]
fn explore_elimination_stack_window() {
    // Forced-collision geometry: a single exchanger slot makes
    // `random_slot` deterministic (index mod 1), so every elimination
    // attempt meets in slot 0 and the exchange protocol itself — offer
    // CAS, claim CAS, retract CAS, TAKEN handshake — is inside the
    // explored surface. A tiny spin budget keeps the window bounded while
    // still letting a popper land mid-window.
    use cds_core::ConcurrentStack;
    let ops = [
        vec![StackOp::Push(1), StackOp::Pop],
        vec![StackOp::Push(2), StackOp::Pop],
    ];
    let report = explore(
        StackSpec::<u64>::default(),
        &opts(),
        &ops,
        || cds_stack::EliminationBackoffStack::<u64>::with_params(1, 2),
        |s, op| match op {
            StackOp::Push(v) => {
                s.push(*v);
                StackRes::Pushed
            }
            StackOp::Pop => StackRes::Popped(s.pop()),
        },
    )
    .unwrap_or_else(|f| panic!("elimination stack window not linearizable: {f:?}"));
    assert_pinned("elimination_stack", &report);
}

#[test]
fn explore_lock_free_bst_window() {
    // Ellen et al. external BST: insert/remove flag-and-help protocol
    // under a window that overlaps an insert-then-remove of a key with a
    // membership query racing both.
    use cds_core::ConcurrentSet;
    let ops = [
        vec![SetOp::Insert(1), SetOp::Remove(1)],
        vec![SetOp::Contains(1)],
    ];
    let report = explore(
        SetSpec::<u64>::default(),
        &opts(),
        &ops,
        cds_tree::LockFreeBst::<u64>::new,
        |t, op| match op {
            SetOp::Insert(v) => t.insert(*v),
            SetOp::Remove(v) => t.remove(v),
            SetOp::Contains(v) => t.contains(v),
        },
    )
    .unwrap_or_else(|f| panic!("lock-free BST window not linearizable: {f:?}"));
    assert_pinned("lock_free_bst", &report);
}

#[test]
fn explore_chase_lev_deque_window() {
    // Only slot 0 touches `worker`, upholding the deque's single-owner
    // contract; the wrapper exists because the explore driver shares one
    // `&target` across all worker threads.
    struct DequeTarget {
        worker: cds_queue::Worker<u64>,
        stealer: cds_queue::Stealer<u64>,
    }
    // SAFETY: `Worker` is !Sync only to enforce single-owner use; the
    // fixed window routes every owner op through slot 0.
    unsafe impl Sync for DequeTarget {}

    let ops = [
        vec![DequeOp::PushBottom(1), DequeOp::PopBottom],
        vec![DequeOp::Steal],
    ];
    let report = explore(
        DequeSpec::<u64>::default(),
        &opts(),
        &ops,
        || {
            let (worker, stealer) = cds_queue::ChaseLevDeque::<u64>::new();
            DequeTarget { worker, stealer }
        },
        |d, op| match op {
            DequeOp::PushBottom(v) => {
                d.worker.push(*v);
                DequeRes::Pushed
            }
            DequeOp::PopBottom => DequeRes::Popped(d.worker.pop()),
            DequeOp::Steal => DequeRes::Stolen(loop {
                match d.stealer.steal() {
                    cds_queue::Steal::Retry => continue,
                    cds_queue::Steal::Empty => break None,
                    cds_queue::Steal::Success(v) => break Some(v),
                }
            }),
        },
    )
    .unwrap_or_else(|f| panic!("chase-lev window not linearizable: {f:?}"));
    assert_pinned("chase_lev", &report);
}

// ---------------------------------------------------------------------
// Weak-memory exploration: the DFS additionally branches on which store
// each Relaxed/Acquire load of an instrumented atomic observes, so
// ordering bugs become enumerable behaviors. One test per structure so
// the demotion toggles can never perturb a concurrently running window.
// All weak windows run on the Leak backend: reclamation machinery is
// orthogonal to the ordering contract under test, and its atomics would
// only inflate the explored surface.
// ---------------------------------------------------------------------

fn weak_opts(detect_races: bool) -> ExploreOptions {
    ExploreOptions {
        weak_memory: true,
        weak_window: 4,
        detect_races,
        max_steps: 2_000,
        // Weak windows branch on reads as well as schedules; give the
        // planted-bug searches room (correct windows exhaust far below).
        max_executions: 500_000,
        // A stale read can make a retry loop spin past the step budget
        // (C11 imposes no read-freshness fairness); stuck executions are
        // expected noise around a plant, and for clean windows the count
        // pin still covers the complete ones.
        on_stuck: OnStuck::Continue,
    }
}

fn exec_stack<S: cds_core::ConcurrentStack<u64>>(s: &S, op: &StackOp<u64>) -> StackRes<u64> {
    match op {
        StackOp::Push(v) => {
            s.push(*v);
            StackRes::Pushed
        }
        StackOp::Pop => StackRes::Popped(s.pop()),
    }
}

#[test]
fn weak_treiber_window_and_relaxed_publish_plant() {
    let setup = || cds_stack::TreiberStack::<u64, cds_reclaim::Leak>::with_reclaimer();

    // Correctly annotated (plant off), races on: every reads-from choice
    // of every schedule linearizes and no published region is touched
    // without synchronization. This is the ordering contract of the
    // Release publish CAS, checked exhaustively.
    let ops = [vec![StackOp::Push(1)], vec![StackOp::Pop]];
    let report = explore(
        StackSpec::<u64>::default(),
        &weak_opts(true),
        &ops,
        setup,
        exec_stack,
    )
    .unwrap_or_else(|f| panic!("weak treiber window not linearizable: {f:?}"));
    assert_pinned("treiber_weak", &report);

    // Plant armed: the push's publish CAS is demoted to Relaxed. A popper
    // may now observe the new head without synchronizing with the pusher
    // and read the node's `next` as its stale pre-link value (null),
    // truncating the stack. Races off so the stale-value demo reaches the
    // linearizability checker instead of the region detector.
    let prev = cds_stack::set_relaxed_publish(true);
    assert!(!prev, "relaxed-publish toggle unexpectedly already set");
    let ops = [
        vec![StackOp::Push(1), StackOp::Push(2)],
        vec![StackOp::Pop, StackOp::Pop],
    ];
    let result = explore(
        StackSpec::<u64>::default(),
        &weak_opts(false),
        &ops,
        setup,
        exec_stack,
    );
    let err = result.expect_err("weak explore missed the planted relaxed publish");
    let (trace, history, minimized) = match *err {
        ExploreError::NonLinearizable {
            trace,
            history,
            minimized,
        } => (trace, history, minimized),
        other => panic!("expected NonLinearizable, got {other:?}"),
    };
    // Seedless and deterministic; ddmin shrank the history.
    assert!(!minimized.is_empty());
    assert!(minimized.len() <= history.len());
    assert!(!check_linearizable(StackSpec::<u64>::default(), &minimized));
    // The trace is a v3 line (schedule + read-from choices) that
    // round-trips through its string form.
    let line = trace.to_string();
    assert!(
        line.starts_with("cds-trace v3 "),
        "unexpected trace: {line}"
    );
    assert_eq!(line.parse::<Trace>().unwrap(), trace);
    let (steps, reads) = match &trace {
        Trace::V3 { steps, reads, .. } => (steps.clone(), reads.clone()),
        other => panic!("expected a v3 trace, got {other:?}"),
    };
    assert!(
        !reads.is_empty(),
        "the stale-read counterexample must involve a non-latest read-from choice"
    );
    // Replaying schedule + reads reproduces the identical history.
    let replayed = replay_schedule(&ops, &steps, &reads, &weak_opts(false), setup, exec_stack)
        .expect("replay of the failing weak execution diverged");
    assert_eq!(replayed, history, "weak replay was not byte-identical");
    let prev = cds_stack::set_relaxed_publish(false);
    assert!(prev);
}

fn exec_queue<Q: cds_core::ConcurrentQueue<u64>>(q: &Q, op: &QueueOp<u64>) -> QueueRes<u64> {
    match op {
        QueueOp::Enqueue(v) => {
            q.enqueue(*v);
            QueueRes::Enqueued
        }
        QueueOp::Dequeue => QueueRes::Dequeued(q.dequeue()),
    }
}

#[test]
fn weak_ms_queue_window_and_relaxed_link_plant() {
    let setup = || cds_queue::MsQueue::<u64, cds_reclaim::Leak>::with_reclaimer();

    // Correctly annotated (plant off), races on: the Release link CAS
    // publishes the node, so every dequeuer that observes it has a
    // happens-before edge to the payload's initialization.
    let ops = [vec![QueueOp::Enqueue(1)], vec![QueueOp::Dequeue]];
    let report = explore(
        QueueSpec::<u64>::default(),
        &weak_opts(true),
        &ops,
        setup,
        exec_queue,
    )
    .unwrap_or_else(|f| panic!("weak ms queue window not linearizable: {f:?}"));
    assert_pinned("ms_queue_weak", &report);

    // Plant armed: the link CAS is demoted to Relaxed. The dequeuer can
    // then observe the node through `head.next` and dereference a payload
    // it never synchronized with — a stale read through a *plain* field,
    // invisible to the atomics model, which is exactly what the
    // published-region race detector exists to catch.
    let prev = cds_queue::set_relaxed_link(true);
    assert!(!prev, "relaxed-link toggle unexpectedly already set");
    let ops = [vec![QueueOp::Enqueue(1)], vec![QueueOp::Dequeue]];
    let result = explore(
        QueueSpec::<u64>::default(),
        &weak_opts(true),
        &ops,
        setup,
        exec_queue,
    );
    let err = result.expect_err("weak explore missed the planted relaxed link");
    let (trace, message) = match *err {
        ExploreError::Panicked { trace, message } => (trace, message),
        other => panic!("expected the region-race panic, got {other:?}"),
    };
    assert!(
        message.contains("weak-memory race"),
        "unexpected panic message: {message}"
    );
    let line = trace.to_string();
    assert!(
        line.starts_with("cds-trace v3 "),
        "unexpected trace: {line}"
    );
    assert_eq!(line.parse::<Trace>().unwrap(), trace);
    // The panic-class ddmin: both operations are load-bearing (no
    // enqueue, nothing unsynchronized to read; no dequeue, no deref), so
    // the minimized window is the window itself — and it still carries a
    // replayable trace and the same racy execution.
    let (min_ops, min_trace, min_message) = cds_lincheck::explore::shrink_panicking_window::<
        _,
        _,
        QueueRes<u64>,
        _,
        _,
    >(&weak_opts(true), &ops, setup, exec_queue)
    .expect("shrink lost the panicking window");
    assert_eq!(min_ops.iter().map(Vec::len).sum::<usize>(), 2);
    assert!(min_message.contains("weak-memory race"));
    // Replaying the failing execution reproduces the identical race,
    // message and all.
    let (steps, reads) = match &min_trace {
        Trace::V3 { steps, reads, .. } => (steps.clone(), reads.clone()),
        other => panic!("expected a v3 trace, got {other:?}"),
    };
    match replay_schedule::<_, _, QueueRes<u64>, _, _>(
        &min_ops,
        &steps,
        &reads,
        &weak_opts(true),
        setup,
        exec_queue,
    ) {
        Err(cds_lincheck::explore::ReplayScheduleError::Panicked(msg)) => {
            assert_eq!(msg, min_message, "replayed race was not byte-identical");
        }
        other => panic!("expected the replay to reproduce the race, got {other:?}"),
    }
    let prev = cds_queue::set_relaxed_link(false);
    assert!(prev);
}

#[test]
fn weak_bounded_queue_window() {
    // Audit window — and the one that caught a real bug. The Vyukov
    // ring reads its cursors with deliberately Relaxed loads; only the
    // per-slot sequence stamps carry the hand-off. When this window was
    // first run, the empty verdict was taken from the stamp alone
    // (`d < 0 => return None`), and the DFS found in ~20 executions the
    // history [Enq(1)→true | Enq(2)→true | Deq→None | Deq→Some(1)]: a
    // dequeuer loses its claim CAS, moves to the next slot, reads that
    // slot's stamp *stale* (the producer only Release-stored it and
    // nothing synchronized the reader), and reports empty between two
    // completed enqueues — unobservable under SC scheduling, non-
    // linearizable under C11. The fix (SeqCst-corroborated empty/full
    // verdicts, crossbeam-ArrayQueue style) is what this window now
    // checks exhaustively: every residual stale read is either absorbed
    // by the protocol or waited out. The payload cells are plain memory
    // guarded by the stamps, not epoch pointers, so the region detector
    // has nothing to observe here; races stay on for uniformity with
    // the other weak windows.
    // Every op crosses the shared cursors several times, so almost no
    // pair of steps is independent and the full 4-op schedule space runs
    // to millions — like the resizing-map window, this one pins a
    // deterministic DFS *prefix* instead of exhausting. The original
    // counterexample surfaced within the first few dozen executions, so
    // the 50k-execution prefix retains the full regression-catching
    // power while keeping the suite fast.
    let opts = ExploreOptions {
        max_executions: 50_000,
        ..weak_opts(true)
    };
    let ops = [
        vec![TryQueueOp::Enq(1), TryQueueOp::Deq],
        vec![TryQueueOp::Enq(2), TryQueueOp::Deq],
    ];
    let report = explore(
        TryQueueSpec::with_capacity(2),
        &opts,
        &ops,
        || cds_queue::BoundedQueue::<u64>::with_capacity(2),
        exec_try_queue,
    )
    .unwrap_or_else(|f| panic!("weak bounded queue window not linearizable: {f:?}"));
    assert_pinned_capped("bounded_queue_weak", &report, &opts);
}

// ---------------------------------------------------------------------
// Resizing map: exhaustive window across a live migration, then the
// planted migration-gap regression. One test so the gap toggle can never
// perturb the untoggled window from a concurrently running test.
// ---------------------------------------------------------------------

/// Deterministic FNV-1a hasher: `RandomState` is seeded per process, and
/// an exhaustive window must explore the same schedules on every run.
#[derive(Clone, Default)]
struct FixedState;

struct Fnv(u64);

impl std::hash::Hasher for Fnv {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }
}

impl BuildHasher for FixedState {
    type Hasher = Fnv;
    fn build_hasher(&self) -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }
}

/// One shard, one bucket, five entries: past the load factor, so the
/// successor table is installed and *every* key is still waiting to
/// migrate when the explored window starts.
fn map_mid_migration() -> cds_map::ResizingMap<u64, u64, FixedState> {
    use cds_core::ConcurrentMap;
    let m = cds_map::ResizingMap::with_config_and_hasher(1, 1, FixedState);
    for k in 0..5 {
        assert!(m.insert(k, k * 10));
    }
    assert_eq!(m.doublings(), 0, "setup must leave the migration pending");
    m
}

fn exec_map(m: &cds_map::ResizingMap<u64, u64, FixedState>, op: &MapOp<u64, u64>) -> MapRes<u64> {
    use cds_core::ConcurrentMap;
    match op {
        MapOp::Insert(k, v) => MapRes::Changed(m.insert(*k, *v)),
        MapOp::Remove(k) => MapRes::Changed(m.remove(k)),
        MapOp::Get(k) => MapRes::Got(m.get(k)),
        MapOp::ContainsKey(k) => MapRes::Has(m.contains_key(k)),
        MapOp::Len => MapRes::Len(m.len()),
    }
}

fn prefilled_spec() -> MapSpec<u64, u64> {
    MapSpec::prefilled((0..5).map(|k| (k, k * 10)))
}

#[test]
fn explore_resizing_map_migration_and_gap_regression() {
    // Exhaustive window, plant off: an insert that performs the pending
    // bucket migration races a lookup of an already-present key. Every
    // schedule must see the key in exactly one table.
    // The migration's lock-convoy branching makes the full space run to
    // millions of schedules, so this window is budget-capped: the pinned
    // count covers the (deterministic) first 20k executions.
    let map_opts = ExploreOptions {
        max_executions: 20_000,
        ..opts()
    };
    let ops = [vec![MapOp::Insert(5, 50)], vec![MapOp::Get(0)]];
    let report = explore(
        prefilled_spec(),
        &map_opts,
        &ops,
        map_mid_migration,
        exec_map,
    )
    .unwrap_or_else(|f| panic!("resizing map migration window not linearizable: {f:?}"));
    assert_pinned_capped("resizing_map_migration", &report, &map_opts);

    // The planted regression: the migrating thread publishes `migrated`
    // and drops the source lock before the entries reach the destination
    // buckets, so a lookup in the gap finds the key in *neither* table.
    let prev = cds_map::set_migration_gap(true);
    assert!(!prev, "migration-gap toggle unexpectedly already set");
    let ops = [vec![MapOp::Get(0)], vec![MapOp::Get(0)]];
    let spec = prefilled_spec();
    let result = explore(spec.clone(), &opts(), &ops, map_mid_migration, exec_map);
    let err = result.expect_err("explore missed the planted migration gap");
    let (trace, history, minimized) = match *err {
        ExploreError::NonLinearizable {
            trace,
            history,
            minimized,
        } => (trace, history, minimized),
        other => panic!("expected NonLinearizable, got {other:?}"),
    };
    assert!(!minimized.is_empty());
    assert!(!check_linearizable(spec.clone(), &minimized));
    // The shrunk core is the smoking gun itself: a lookup of a key the
    // map provably holds, returning "absent".
    assert!(minimized
        .iter()
        .all(|o| o.result == MapRes::Got(None) && o.op == MapOp::Get(0)));
    let steps = match &trace {
        Trace::V2 { steps, .. } => steps.clone(),
        other => panic!("expected a v2 trace, got {other:?}"),
    };
    assert_eq!(trace.to_string().parse::<Trace>().unwrap(), trace);
    let replayed = replay_schedule(&ops, &steps, &[], &opts(), map_mid_migration, exec_map)
        .expect("replay of the failing schedule diverged");
    assert_eq!(replayed, history, "replay was not byte-identical");
    let prev = cds_map::set_migration_gap(false);
    assert!(prev);
}

// ---------------------------------------------------------------------
// Channels: close/send and close/recv interleavings exhaustively, then
// the planted wake-before-publish close-path regression. The blocking
// `Recv` is safe in these windows because a receive that runs after (or
// concurrently with) `close` is guaranteed to complete: the close path
// force-unparks every waiter and a post-close receive never re-parks.
// ---------------------------------------------------------------------

fn exec_chan(ch: &cds_chan::Channel<u32>, op: &ChanOp) -> ChanRes {
    match op {
        ChanOp::Send(v) => match ch.send(*v) {
            Ok(()) => ChanRes::Sent,
            Err(cds_chan::SendError::Disconnected(_)) => ChanRes::Disconnected,
        },
        ChanOp::TrySend(v) => match ch.try_send(*v) {
            Ok(()) => ChanRes::Sent,
            Err(cds_chan::TrySendError::Full(_)) => ChanRes::Full,
            Err(cds_chan::TrySendError::Disconnected(_)) => ChanRes::Disconnected,
        },
        ChanOp::Recv => match ch.recv() {
            Ok(v) => ChanRes::Received(v),
            Err(cds_chan::RecvError::Closed) => ChanRes::Closed,
        },
        ChanOp::TryRecv => match ch.try_recv() {
            Ok(v) => ChanRes::Received(v),
            Err(cds_chan::TryRecvError::Empty) => ChanRes::Empty,
            Err(cds_chan::TryRecvError::Closed) => ChanRes::Closed,
        },
        ChanOp::Close => ChanRes::CloseDone(ch.close()),
    }
}

/// A send racing a close-then-drain: the send must either land before
/// the close linearizes (and then be drained before any `Closed`
/// answer) or come back `Disconnected` — no schedule may strand an
/// `Ok`-sent message or hand out a phantom one. This is exactly the
/// in-flight window the close protocol's `inflight` counter guards.
#[test]
fn explore_channel_send_close_window() {
    let ops = [vec![ChanOp::Send(1)], vec![ChanOp::Close, ChanOp::TryRecv]];
    let report = explore(
        ChannelSpec::unbounded(),
        &opts(),
        &ops,
        cds_chan::unbounded::<u32>,
        exec_chan,
    )
    .unwrap_or_else(|f| panic!("channel send/close window not linearizable: {f:?}"));
    assert_pinned("chan_send_close", &report);
}

/// A receiver that may genuinely park races a send-then-close: every
/// schedule must wake the receiver (publish-then-wake from the send, or
/// the close's force-unpark) and answer `Received(1)` or `Closed`
/// consistently with where the close linearized — a receiver asleep
/// through the close, or one that answers `Closed` with the message
/// still buffered, shows up here as a stuck or non-linearizable
/// schedule.
#[test]
fn explore_channel_recv_close_window() {
    let ops = [vec![ChanOp::Recv], vec![ChanOp::Send(1), ChanOp::Close]];
    let report = explore(
        ChannelSpec::unbounded(),
        &opts(),
        &ops,
        cds_chan::unbounded::<u32>,
        exec_chan,
    )
    .unwrap_or_else(|f| panic!("channel recv/close window not linearizable: {f:?}"));
    assert_pinned("chan_recv_close", &report);
}

/// The planted close-path regression: a receiver that saw (empty,
/// closed, `inflight == 0`) trusts the close wake and skips the final
/// drain dequeue, so a message published between its first dequeue and
/// the inflight read is stranded — `Recv` answers `Closed` while an
/// `Ok`-sent message sits in the buffer. `explore` must find that
/// deterministically (no seed anywhere), ddmin-shrink the window, and
/// replay its schedule byte-identically.
#[test]
fn explore_channel_planted_close_skips_final_drain() {
    let prev = cds_chan::set_close_skips_final_drain(true);
    assert!(!prev, "close-path toggle unexpectedly already set");
    let ops = [vec![ChanOp::Send(1)], vec![ChanOp::Close, ChanOp::TryRecv]];
    let spec = ChannelSpec::unbounded();
    let result = explore(
        spec.clone(),
        &ExploreOptions {
            on_stuck: OnStuck::Continue,
            ..opts()
        },
        &ops,
        cds_chan::unbounded::<u32>,
        exec_chan,
    );
    let err = result.expect_err("explore missed the planted close-path drain skip");
    let (trace, history, minimized) = match *err {
        ExploreError::NonLinearizable {
            trace,
            history,
            minimized,
        } => (trace, history, minimized),
        other => panic!("expected NonLinearizable, got {other:?}"),
    };
    // The ddmin shrink produced a smaller, still-failing core.
    assert!(!minimized.is_empty());
    assert!(minimized.len() <= history.len());
    assert!(!check_linearizable(spec.clone(), &minimized));
    // The trace is a v2 (explicit step list) line that round-trips.
    let line = trace.to_string();
    assert!(
        line.starts_with("cds-trace v2 "),
        "unexpected trace: {line}"
    );
    assert_eq!(line.parse::<Trace>().unwrap(), trace);
    // And replaying it reproduces the identical history, byte for byte.
    let steps = match &trace {
        Trace::V2 { steps, .. } => steps.clone(),
        other => panic!("expected a v2 trace, got {other:?}"),
    };
    let replayed = replay_schedule(
        &ops,
        &steps,
        &[],
        &opts(),
        cds_chan::unbounded::<u32>,
        exec_chan,
    )
    .expect("replay of the failing schedule diverged");
    assert_eq!(replayed, history, "replay was not byte-identical");
    let prev = cds_chan::set_close_skips_final_drain(false);
    assert!(prev);
}

// ---------------------------------------------------------------------
// Eventcount (executor parker): the prepare/re-check/commit protocol
// under both systematic exploration and the PCT stress scheduler.
// ---------------------------------------------------------------------

/// A gate built the way `cds-exec` workers use their [`cds_exec::Parker`]:
/// publish work, then wake; prepare to sleep, then re-check. `Await`
/// never actually parks — bounded windows need every operation to return
/// — so it reports what the post-prepare re-check observed. An `Await`
/// that observes no flag *after* a completed `Signal` is a lost wakeup.
struct Gate {
    parker: cds_exec::Parker,
    flag: AtomicBool,
}

impl Gate {
    fn new() -> Self {
        Gate {
            parker: cds_exec::Parker::new(),
            flag: AtomicBool::new(false),
        }
    }
}

fn exec_gate(g: &Gate, op: &EventcountOp) -> EventcountRes {
    match op {
        EventcountOp::Signal => {
            g.flag.store(true, Ordering::SeqCst);
            g.parker.unpark_all();
            EventcountRes::Signaled
        }
        EventcountOp::Await => {
            let _ticket = g.parker.prepare();
            // The classic lost-wakeup window: between announcing intent to
            // sleep and re-checking the condition.
            cds_core::stress::yield_point();
            let woken = g.flag.load(Ordering::SeqCst);
            g.parker.cancel();
            if woken {
                EventcountRes::Woken
            } else {
                EventcountRes::WouldBlock
            }
        }
    }
}

#[test]
fn explore_eventcount_window_and_pct() {
    let ops = [
        vec![EventcountOp::Signal],
        vec![EventcountOp::Await, EventcountOp::Await],
    ];
    let report = explore(
        EventcountSpec::default(),
        &opts(),
        &ops,
        Gate::new,
        exec_gate,
    )
    .unwrap_or_else(|f| panic!("eventcount window not linearizable: {f:?}"));
    assert_pinned("eventcount", &report);

    // The same protocol under the PCT sampler: the coverage the rest of
    // the suite was missing (the parker had no lincheck spec at all).
    stress(
        EventcountSpec::default(),
        &StressOptions {
            seed: 0xec0,
            rounds: 8,
            ..StressOptions::default()
        },
        Gate::new,
        |rng, t| {
            if t == 0 && rng.below(2) == 0 {
                EventcountOp::Signal
            } else {
                EventcountOp::Await
            }
        },
        exec_gate,
    )
    .unwrap_or_else(|f| panic!("eventcount not linearizable under PCT: {f:?}"));
}

//! End-to-end reclamation stress: drop-accounting payloads prove that no
//! element is leaked or double-freed anywhere in the family, even under
//! concurrent churn that exercises the epoch collector and hazard-pointer
//! domains hard.
//!
//! Every payload increments a shared counter in `Drop`; after a structure
//! dies (and, for epoch-managed structures, after the default collector
//! quiesces) the counter must equal the number of payloads created —
//! exactly once each.

use cds_atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cds_core::{ConcurrentQueue, ConcurrentSet, ConcurrentStack};

/// A payload that counts its drops. Panics (via the test harness) if the
/// total ever exceeds the created count — a double free turns into a
/// visible assertion rather than silent corruption.
#[derive(Debug)]
struct Tracked {
    id: u64,
    drops: Arc<AtomicUsize>,
}

impl Tracked {
    fn new(id: u64, drops: &Arc<AtomicUsize>) -> Self {
        Tracked {
            id,
            drops: Arc::clone(drops),
        }
    }
}

impl Drop for Tracked {
    fn drop(&mut self) {
        self.drops.fetch_add(1, Ordering::SeqCst);
    }
}

impl PartialEq for Tracked {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}
impl Eq for Tracked {}
impl PartialOrd for Tracked {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Tracked {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.id.cmp(&other.id)
    }
}

/// Drains every process-wide reclamation backend — the default epoch
/// collector, the hazard domain, and the debug quarantine — so deferred
/// destructors run before we audit the drop counter.
fn quiesce_reclaimers() {
    use cds_reclaim::Reclaimer;
    for _ in 0..8 {
        let guard = cds_reclaim::epoch::pin();
        guard.flush();
    }
    cds_reclaim::Hazard::collect();
    cds_reclaim::DebugReclaim::collect();
}

fn stack_churn<S: ConcurrentStack<Tracked> + Default + 'static>() {
    let drops = Arc::new(AtomicUsize::new(0));
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 2_000;
    {
        let s = Arc::new(S::default());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let s = Arc::clone(&s);
                let drops = Arc::clone(&drops);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        s.push(Tracked::new(t * PER_THREAD + i, &drops));
                        if i % 2 == 0 {
                            drop(s.pop());
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        // Remaining elements die with the structure.
    }
    quiesce_reclaimers();
    assert_eq!(
        drops.load(Ordering::SeqCst) as u64,
        THREADS * PER_THREAD,
        "leak or double free in {}",
        S::NAME
    );
}

fn queue_churn<Q: ConcurrentQueue<Tracked> + Default + 'static>() {
    let drops = Arc::new(AtomicUsize::new(0));
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 2_000;
    {
        let q = Arc::new(Q::default());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let q = Arc::clone(&q);
                let drops = Arc::clone(&drops);
                std::thread::spawn(move || {
                    for i in 0..PER_THREAD {
                        q.enqueue(Tracked::new(t * PER_THREAD + i, &drops));
                        if i % 2 == 0 {
                            drop(q.dequeue());
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
    quiesce_reclaimers();
    assert_eq!(
        drops.load(Ordering::SeqCst) as u64,
        THREADS * PER_THREAD,
        "leak or double free in {}",
        Q::NAME
    );
}

fn set_churn<S: ConcurrentSet<Tracked> + Default + 'static>() {
    let drops = Arc::new(AtomicUsize::new(0));
    let created = Arc::new(AtomicUsize::new(0));
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 600;
    {
        let s = Arc::new(S::default());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let s = Arc::clone(&s);
                let drops = Arc::clone(&drops);
                let created = Arc::clone(&created);
                std::thread::spawn(move || {
                    let mut x = (t + 1) * 0x9e3779b9;
                    for _ in 0..PER_THREAD {
                        x ^= x << 13;
                        x ^= x >> 7;
                        x ^= x << 17;
                        let k = x % 64;
                        created.fetch_add(1, Ordering::SeqCst);
                        let payload = Tracked::new(k, &drops);
                        if x % 3 == 0 {
                            // Remove takes a reference; the probe payload
                            // drops here either way.
                            s.remove(&payload);
                        } else {
                            // Insert consumes; rejected duplicates drop.
                            s.insert(payload);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
    quiesce_reclaimers();
    assert_eq!(
        drops.load(Ordering::SeqCst),
        created.load(Ordering::SeqCst),
        "leak or double free in {}",
        S::NAME
    );
}

#[test]
fn stacks_account_for_every_payload() {
    stack_churn::<cds_stack::CoarseStack<Tracked>>();
    stack_churn::<cds_stack::TreiberStack<Tracked>>();
    stack_churn::<cds_stack::TreiberStack<Tracked, cds_reclaim::Hazard>>();
    stack_churn::<cds_stack::TreiberStack<Tracked, cds_reclaim::DebugReclaim>>();
    stack_churn::<cds_stack::EliminationBackoffStack<Tracked>>();
    stack_churn::<cds_stack::FcStack<Tracked>>();
}

#[test]
fn queues_account_for_every_payload() {
    queue_churn::<cds_queue::CoarseQueue<Tracked>>();
    queue_churn::<cds_queue::TwoLockQueue<Tracked>>();
    queue_churn::<cds_queue::MsQueue<Tracked>>();
    queue_churn::<cds_queue::FcQueue<Tracked>>();
}

#[test]
fn list_sets_account_for_every_payload() {
    set_churn::<cds_list::CoarseList<Tracked>>();
    set_churn::<cds_list::FineList<Tracked>>();
    set_churn::<cds_list::OptimisticList<Tracked>>();
    set_churn::<cds_list::LazyList<Tracked>>();
    set_churn::<cds_list::HarrisMichaelList<Tracked>>();
}

#[test]
fn ordered_sets_account_for_every_payload() {
    set_churn::<cds_skiplist::CoarseSkipList<Tracked>>();
    set_churn::<cds_skiplist::LazySkipList<Tracked>>();
    set_churn::<cds_skiplist::LockFreeSkipList<Tracked>>();
    set_churn::<cds_tree::CoarseBst<Tracked>>();
}

#[test]
fn epoch_collector_eventually_reclaims_churn() {
    // Hammer one epoch-managed structure and verify the default collector's
    // backlog does not grow without bound.
    let drops = Arc::new(AtomicUsize::new(0));
    let s = cds_stack::TreiberStack::new();
    for i in 0..50_000u64 {
        s.push(Tracked::new(i, &drops));
        drop(s.pop());
    }
    drop(s);
    quiesce_reclaimers();
    let freed = drops.load(Ordering::SeqCst);
    assert!(
        freed >= 49_000,
        "collector is hoarding: only {freed}/50000 payloads freed"
    );
}

//! Property-based tests of the reclamation substrates themselves.
//!
//! These drive `cds-reclaim` through randomized single-threaded schedules
//! (seeded by `cds_lincheck::prop`) where the expected reclamation
//! behaviour can be computed exactly: protected nodes must survive scans,
//! unprotected retirees must be freed, and epoch pins must hold back
//! collection until released.

use cds_atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::Arc;

use cds_lincheck::prop::{forall_vec, Config, Prng};
use cds_reclaim::epoch::{Collector, Owned};
use cds_reclaim::hazard::{Domain, HazardPointer, SCAN_THRESHOLD};

#[derive(Debug)]
struct Counted(Arc<AtomicUsize>);

impl Drop for Counted {
    fn drop(&mut self) {
        self.0.fetch_add(1, Ordering::SeqCst);
    }
}

/// Any interleaving of protect / retire / scan on one slot: the node
/// currently protected is never freed; everything retired while
/// unprotected is freed by the next scan.
#[test]
fn hazard_protection_is_respected() {
    let gen = |rng: &mut Prng| rng.below(3) as u8;
    forall_vec(&Config::new(48, 60), gen, |script: &[u8]| {
        let domain = Domain::new();
        let drops = Arc::new(AtomicUsize::new(0));
        let mut created = 0usize;
        let mut retired_unprotected = 0usize;

        let slot: AtomicPtr<Counted> =
            AtomicPtr::new(Box::into_raw(Box::new(Counted(Arc::clone(&drops)))));
        created += 1;
        let mut hp = HazardPointer::new(&domain);
        let mut protecting = false;

        for step in script {
            match step {
                0 => {
                    // Protect whatever is in the slot.
                    hp.protect(&slot);
                    protecting = true;
                }
                1 => {
                    // Swap in a fresh node and retire the old one. The old
                    // node may be protected: it must then survive scans
                    // until the hazard moves.
                    let fresh = Box::into_raw(Box::new(Counted(Arc::clone(&drops))));
                    created += 1;
                    let old = slot.swap(fresh, Ordering::AcqRel);
                    // SAFETY: `old` is unlinked and retired exactly once.
                    unsafe { domain.retire(old) };
                    if !protecting {
                        retired_unprotected += 1;
                    }
                    // After the swap the protection (if any) covers a node
                    // that is now retired; the *new* slot value is
                    // unprotected but also not retired.
                }
                _ => {
                    domain.scan();
                    // Everything retired while unprotected must be gone by
                    // now; the protected node (if retired) must not be.
                    assert!(
                        drops.load(Ordering::SeqCst) >= retired_unprotected,
                        "scan failed to free unprotected retirees"
                    );
                }
            }
        }

        // Cleanup: free the final slot value; drop protection; drain.
        let last = slot.swap(std::ptr::null_mut(), Ordering::AcqRel);
        // SAFETY: unlinked; never retired (only swapped-out nodes were).
        unsafe { drop(Box::from_raw(last)) };
        drop(hp);
        drop(domain);
        assert_eq!(
            drops.load(Ordering::SeqCst),
            created,
            "domain drop must reclaim everything exactly once"
        );
    });
}

/// Epoch collector: a pinned guard holds back reclamation of items
/// deferred after it pinned; unpinning and collecting frees them all.
/// Exhaustive over batch sizes rather than sampled.
#[test]
fn epoch_pins_hold_back_collection() {
    for batch in 1usize..40 {
        let collector = Collector::new();
        let h1 = collector.register();
        let h2 = collector.register();
        let drops = Arc::new(AtomicUsize::new(0));

        let blocker = h2.pin();
        {
            let guard = h1.pin();
            for _ in 0..batch {
                let node = Owned::new(Counted(Arc::clone(&drops))).into_shared(&guard);
                // SAFETY: node is unreachable (never published anywhere).
                unsafe { guard.defer_destroy(node) };
            }
            guard.flush();
        }
        for _ in 0..8 {
            collector.collect();
        }
        assert_eq!(
            drops.load(Ordering::SeqCst),
            0,
            "items freed while a guard from before the defer was still pinned"
        );

        drop(blocker);
        for _ in 0..4 {
            collector.collect();
        }
        assert_eq!(drops.load(Ordering::SeqCst), batch);
    }
}

/// Michael's bound: the retired-but-unreclaimed backlog never exceeds the
/// number of published hazard slots plus the scan batch threshold. We
/// retire a randomized stream of nodes (some protected, some not) and
/// check the bound after every retire.
#[test]
fn retired_backlog_is_bounded_by_hazards_plus_batch() {
    let gen = |rng: &mut Prng| rng.below(4) as u8;
    forall_vec(&Config::new(32, 400), gen, |script: &[u8]| {
        let domain = Domain::new();
        let drops = Arc::new(AtomicUsize::new(0));

        // A small fixed population of hazard slots, each either parked on
        // a live decoy node or empty.
        let decoys: Vec<AtomicPtr<Counted>> = (0..3)
            .map(|_| AtomicPtr::new(Box::into_raw(Box::new(Counted(Arc::clone(&drops))))))
            .collect();
        let mut hazards: Vec<HazardPointer<'_>> = (0..decoys.len())
            .map(|_| HazardPointer::new(&domain))
            .collect();

        for (i, step) in script.iter().enumerate() {
            let slot = i % hazards.len();
            match step {
                0 => {
                    hazards[slot].protect(&decoys[slot]);
                }
                1 => {
                    hazards[slot].reset();
                }
                _ => {
                    // Retire an unpublished throwaway node.
                    let node = Box::into_raw(Box::new(Counted(Arc::clone(&drops))));
                    // SAFETY: never published; retired exactly once.
                    unsafe { domain.retire(node) };
                }
            }
            assert!(
                domain.retired_len() <= hazards.len() + SCAN_THRESHOLD,
                "backlog {} exceeds H + batch = {}",
                domain.retired_len(),
                hazards.len() + SCAN_THRESHOLD
            );
        }

        // Cleanup: decoys were never retired; free them directly.
        hazards.clear();
        for d in &decoys {
            let p = d.swap(std::ptr::null_mut(), Ordering::AcqRel);
            // SAFETY: owned by this test, never retired.
            unsafe { drop(Box::from_raw(p)) };
        }
    });
}

/// A node with a matching published hazard survives arbitrary decoy churn
/// and explicit scans; the moment the hazard resets, one scan frees it.
#[test]
fn matching_hazard_blocks_reclamation() {
    let domain = Domain::new();
    let protected_drops = Arc::new(AtomicUsize::new(0));
    let slot: AtomicPtr<Counted> = AtomicPtr::new(Box::into_raw(Box::new(Counted(Arc::clone(
        &protected_drops,
    )))));

    let mut hp = HazardPointer::new(&domain);
    let p = hp.protect(&slot);
    // Unlink and retire while the hazard still covers it.
    slot.store(std::ptr::null_mut(), Ordering::Release);
    // SAFETY: unlinked, retired exactly once, hazard published.
    unsafe { domain.retire(p) };

    // Decoy churn: enough unprotected retirees to trip many scan cycles.
    let decoy_drops = Arc::new(AtomicUsize::new(0));
    for _ in 0..(SCAN_THRESHOLD * 4) {
        let node = Box::into_raw(Box::new(Counted(Arc::clone(&decoy_drops))));
        // SAFETY: never published; retired exactly once.
        unsafe { domain.retire(node) };
    }
    domain.scan();
    assert_eq!(
        protected_drops.load(Ordering::SeqCst),
        0,
        "protected node reclaimed while its hazard was published"
    );
    assert_eq!(
        decoy_drops.load(Ordering::SeqCst),
        SCAN_THRESHOLD * 4,
        "unprotected decoys must all be reclaimed by an explicit scan"
    );

    hp.reset();
    domain.scan();
    assert_eq!(
        protected_drops.load(Ordering::SeqCst),
        1,
        "node must be reclaimed once its hazard resets"
    );
}

/// Era (blanket) protection: an era entered *before* a batch of retires
/// holds every one of them back, regardless of address; dropping the era
/// releases them all on the next scan.
#[test]
fn era_blocks_nodes_retired_after_entry() {
    let domain = Domain::new();
    let drops = Arc::new(AtomicUsize::new(0));

    let era = domain.enter_era();
    const BATCH: usize = 24;
    for _ in 0..BATCH {
        let node = Box::into_raw(Box::new(Counted(Arc::clone(&drops))));
        // SAFETY: never published; retired exactly once.
        unsafe { domain.retire(node) };
    }
    domain.scan();
    assert_eq!(
        drops.load(Ordering::SeqCst),
        0,
        "era entered before the retires must hold back every node"
    );

    drop(era);
    domain.scan();
    assert_eq!(
        drops.load(Ordering::SeqCst),
        BATCH,
        "dropping the era must release the whole batch"
    );
}

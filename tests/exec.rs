//! Deterministic scheduled runs of the `cds-exec` work-stealing pool.
//!
//! Built with the root crate's self-dev-dependency (`stress` +
//! `telemetry`), so the pool's yield points are real PCT preemption
//! points and the `cds-obs` counters are live. The recipe for a
//! scheduled pool run (see `Executor`'s type docs):
//!
//! 1. install the scheduler, register the driving thread at an index
//!    `>= threads` (the workers take `0..threads`);
//! 2. construct the pool — its internal start barrier returns only after
//!    every worker has registered;
//! 3. drive the workload and `quiesce`;
//! 4. snapshot telemetry *before* shutdown, drop the driver's slot
//!    *before* `shutdown` (joining blocks in the kernel), then drop the
//!    run.
//!
//! The counters are global, so every test takes the [`serial`] lock and
//! measures through baseline/delta snapshot pairs.

use cds_atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

use cds_core::stress as sched;
use cds_core::stress::StressConfig;
use cds_exec::{ExecConfig, Executor};
use cds_obs::{Event, Snapshot};
use cds_reclaim::{DebugReclaim, Ebr, Hazard, Leak, Reclaimer};

/// Serializes the tests in this binary: scheduler installs must not
/// overlap (the driver registers a fixed index) and one test's scheduled
/// run must not land inside another's baseline/delta window.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

const THREADS: usize = 3;

/// Runs `body` against a fresh pool under a pinned-seed schedule and
/// returns the telemetry delta of the whole run (construction through
/// quiesce) plus the pool's own `(spawned, executed)` pair at quiesce.
fn run_scheduled<R: Reclaimer>(
    seed: u64,
    injector_capacity: usize,
    body: impl FnOnce(&Executor<R>),
) -> (Snapshot, u64, u64) {
    let run = sched::install(StressConfig {
        seed,
        change_period: 3,
        backoff_denom: 0,
        backoff_spins: 0,
    });
    let slot = sched::register(THREADS);
    let base = Snapshot::take();
    let pool = Executor::<R>::with_config(ExecConfig {
        threads: THREADS,
        seed,
        injector_capacity,
    });
    body(&pool);
    pool.quiesce();
    let delta = Snapshot::take().delta(&base);
    let (spawned, executed) = (pool.spawned(), pool.executed());
    drop(slot);
    pool.shutdown();
    drop(run);
    (delta, spawned, executed)
}

/// Fork/join conservation on every reclamation backend: 4 root tasks
/// each spawn 3 children from inside the pool (exercising the local-deque
/// fast path), and at quiesce every spawn — transitive ones included —
/// has executed exactly once.
#[test]
fn scheduled_fork_join_conserves_on_every_backend() {
    let _guard = serial();

    fn case<R: Reclaimer>(seed: u64) {
        const ROOTS: u64 = 4;
        const CHILDREN: u64 = 3;
        let hits = Arc::new(AtomicU64::new(0));
        let (delta, spawned, executed) = run_scheduled::<R>(seed, 8, |pool| {
            for _ in 0..ROOTS {
                let handle = pool.handle();
                let hits = Arc::clone(&hits);
                pool.spawn(move || {
                    hits.fetch_add(1, Ordering::SeqCst);
                    for _ in 0..CHILDREN {
                        let hits = Arc::clone(&hits);
                        handle.spawn(move || {
                            hits.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        let total = ROOTS * (1 + CHILDREN);
        assert_eq!(hits.load(Ordering::SeqCst), total, "{}", R::NAME);
        assert_eq!((spawned, executed), (total, total), "{}", R::NAME);
        if cds_obs::enabled() {
            assert_eq!(delta.get(Event::ExecTasksSpawned), total, "{}", R::NAME);
            assert_eq!(delta.get(Event::ExecTasksExecuted), total, "{}", R::NAME);
        }
    }

    case::<Ebr>(0xe8ec0);
    case::<Hazard>(0xe8ec1);
    case::<Leak>(0xe8ec2);
    case::<DebugReclaim>(0xe8ec3);
}

/// A capacity-1 injector request (rounded up to the 2-slot minimum —
/// this very test caught the capacity-1 ring losing a task mid-read,
/// see `BoundedQueue::with_capacity`) forces the overflow path under
/// schedule: spawns still never block, nothing is lost, and when
/// telemetry is live the overflow counter proves the path actually ran.
#[test]
fn scheduled_tiny_injector_overflows_without_loss() {
    let _guard = serial();

    const TASKS: u64 = 32;
    let hits = Arc::new(AtomicU64::new(0));
    let (delta, spawned, executed) = run_scheduled::<Ebr>(0x0f10, 1, |pool| {
        for _ in 0..TASKS {
            let hits = Arc::clone(&hits);
            pool.spawn(move || {
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(hits.load(Ordering::SeqCst), TASKS);
    assert_eq!((spawned, executed), (TASKS, TASKS));
    if cds_obs::enabled() {
        assert_eq!(delta.get(Event::ExecTasksSpawned), TASKS);
        assert_eq!(delta.get(Event::ExecTasksExecuted), TASKS);
        assert!(
            delta.get(Event::ExecInjectorOverflow) > 0,
            "32 spawns against a 2-slot injector never overflowed"
        );
    }
}

/// Replayability: two runs with the same schedule seed, pool seed, and
/// workload must produce byte-identical executor telemetry — down to the
/// steal hit/miss and park counts, which are pure functions of the
/// schedule. A divergence means some pool decision escaped the seeded
/// scheduler (the E13 experiment and every seeded regression above rely
/// on this property).
#[test]
fn scheduled_same_seed_gives_identical_steal_deltas() {
    let _guard = serial();

    fn workload(pool: &Executor<Ebr>) {
        for i in 0..12u64 {
            let handle = pool.handle();
            pool.spawn(move || {
                if i % 3 == 0 {
                    handle.spawn(move || {
                        std::hint::black_box(i);
                    });
                }
            });
        }
    }

    let (d1, s1, e1) = run_scheduled::<Ebr>(0xdece1, 4, workload);
    let (d2, s2, e2) = run_scheduled::<Ebr>(0xdece1, 4, workload);
    assert_eq!((s1, e1), (s2, e2));
    if cds_obs::enabled() {
        for event in [
            Event::ExecTasksSpawned,
            Event::ExecTasksExecuted,
            Event::ExecStealHit,
            Event::ExecStealMiss,
            Event::ExecParks,
            Event::ExecInjectorOverflow,
            Event::DequeStealBatchElems,
            Event::DequeStealBatchMax,
        ] {
            assert_eq!(
                d1.get(event),
                d2.get(event),
                "{event:?} diverged across identical seeds"
            );
        }
    }
}

//! Metric-conservation tests for the `cds-obs` telemetry layer.
//!
//! The root crate's self-dev-dependency compiles these tests with both
//! `stress` (deterministic PCT scheduling) and `telemetry` (live
//! counters), so the assertions run against real counts; in a build
//! without the feature the same counters compile to no-ops and
//! `cds_obs::enabled()` gates every non-trivial expectation, keeping the
//! suite green in both configurations.
//!
//! The counters are global and monotonic and the test harness runs test
//! functions on parallel threads, so every test takes the [`serial`]
//! lock and measures through baseline/delta snapshot pairs; assertions
//! about absolute totals use the monotonic snapshot directly.

use std::sync::{Mutex, MutexGuard, OnceLock};

use cds_core::{ConcurrentMap, ConcurrentStack};
use cds_lincheck::specs::{MapOp, MapRes, MapSpec, StackOp, StackRes, StackSpec};
use cds_lincheck::stress::{stress, StressOptions};
use cds_obs::{Event, Snapshot};
use cds_reclaim::{DebugReclaim, Ebr, Hazard, Leak, Reclaimer};

/// Serializes the tests in this binary so one test's scheduled run never
/// lands inside another's baseline/delta window.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

/// Pinned-seed options: unlike `tests/schedules.rs` these do not honor
/// `CDS_STRESS_SEED` — conservation must hold for any schedule, and the
/// same-seed determinism test depends on the seed being fixed.
fn opts(seed: u64) -> StressOptions {
    StressOptions {
        seed,
        rounds: 4,
        ..StressOptions::default()
    }
}

fn gen_stack(rng: &mut cds_core::stress::SplitMix64, t: usize) -> StackOp<u64> {
    if rng.below(2) == 0 {
        StackOp::Push((t as u64) << 8 | rng.below(16))
    } else {
        StackOp::Pop
    }
}

fn exec_stack<S: ConcurrentStack<u64>>(s: &S, op: &StackOp<u64>) -> StackRes<u64> {
    match op {
        StackOp::Push(v) => {
            s.push(*v);
            StackRes::Pushed
        }
        StackOp::Pop => StackRes::Popped(s.pop()),
    }
}

/// One scheduled churn of a Treiber stack instantiated against `R`.
fn stack_churn<R: Reclaimer>(seed: u64) {
    stress(
        StackSpec::<u64>::default(),
        &opts(seed),
        cds_stack::TreiberStack::<u64, R>::with_reclaimer,
        gen_stack,
        exec_stack,
    )
    .unwrap_or_else(|f| panic!("treiber/{} not linearizable: {f:?}", R::NAME));
}

/// One scheduled insert-heavy churn of a resizing map born at the
/// smallest geometry (one shard, one bucket), so a handful of distinct
/// inserts forces doublings — and therefore bucket migrations — inside
/// the bounded lincheck window.
fn resize_churn<R: Reclaimer>(seed: u64) {
    let o = StressOptions {
        threads: 3,
        ops_per_thread: 20,
        rounds: 2,
        ..opts(seed)
    };
    stress(
        MapSpec::<u64, u64>::default(),
        &o,
        || cds_map::ResizingMap::<u64, u64, std::hash::RandomState, R>::with_config(1, 1),
        |rng, t| {
            // Mostly-distinct keys: growth needs resident entries, not
            // overwrites of the same few slots.
            let k = (t as u64) << 8 | rng.below(32);
            if rng.below(4) == 0 {
                MapOp::Get(k)
            } else {
                MapOp::Insert(k, rng.below(100))
            }
        },
        |m, op| match op {
            MapOp::Insert(k, v) => MapRes::Changed(m.insert(*k, *v)),
            MapOp::Remove(k) => MapRes::Changed(m.remove(k)),
            MapOp::Get(k) => MapRes::Got(m.get(k)),
            MapOp::ContainsKey(k) => MapRes::Has(m.contains_key(k)),
            MapOp::Len => MapRes::Len(m.len()),
        },
    )
    .unwrap_or_else(|f| panic!("resizing/{} not linearizable: {f:?}", R::NAME));
}

/// `cas_success + cas_failure == cas_attempts`, per backend. The
/// invariant holds by construction (`cds_obs::cas_outcome` records the
/// attempt and its outcome together), so a violation means an
/// instrumentation site bypassed that helper.
#[test]
fn cas_counts_are_conserved_under_every_backend() {
    let _g = serial();
    let runs: [(fn(u64), u64); 4] = [
        (stack_churn::<Ebr>, 0xca50),
        (stack_churn::<Hazard>, 0xca51),
        (stack_churn::<Leak>, 0xca52),
        (stack_churn::<DebugReclaim>, 0xca53),
    ];
    for (run, seed) in runs {
        let base = Snapshot::take();
        run(seed);
        let d = Snapshot::take().delta(&base);
        assert_eq!(
            d.get(Event::CasSuccess) + d.get(Event::CasFailure),
            d.get(Event::CasAttempt),
            "CAS outcome counts not conserved (seed {seed:#x})"
        );
        if cds_obs::enabled() {
            assert!(
                d.get(Event::CasSuccess) > 0,
                "a scheduled stack churn must commit at least one CAS (seed {seed:#x})"
            );
        }
    }
}

/// Every elimination transfers one value from one push to one pop, so at
/// quiescence the hit counters pair exactly and each side's hits are
/// bounded by its operation count.
#[test]
fn elimination_hits_pair_and_are_bounded_by_op_counts() {
    let _g = serial();
    let base = Snapshot::take();
    stress(
        StackSpec::<u64>::default(),
        &opts(0xe71),
        // A small array and generous spin budget make collisions likely
        // under the scheduler, though hits are not guaranteed — only the
        // inequalities below are invariants.
        || cds_stack::EliminationBackoffStack::<u64>::with_params(2, 64),
        gen_stack,
        exec_stack,
    )
    .unwrap_or_else(|f| panic!("elimination stack not linearizable: {f:?}"));
    let d = Snapshot::take().delta(&base);
    assert_eq!(
        d.get(Event::ElimHitPush),
        d.get(Event::ElimHitPop),
        "an elimination must pair exactly one push with one pop"
    );
    assert!(d.get(Event::ElimHitPush) <= d.get(Event::ElimPush));
    assert!(d.get(Event::ElimHitPop) <= d.get(Event::ElimPop));
    if cds_obs::enabled() {
        assert!(
            d.get(Event::ElimPush) > 0 && d.get(Event::ElimPop) > 0,
            "scheduled churn recorded no elimination-stack operations"
        );
    }
}

/// `buckets_moved == Σ batch sizes`: `migrate_bucket` counts each actual
/// move, while the callers (help batches and own-bucket moves) sum the
/// returned booleans into the batch-ops counter — a genuine cross-call-
/// site conservation check, exercised under all four backends.
#[test]
fn buckets_moved_equals_sum_of_batch_sizes_under_every_backend() {
    let _g = serial();
    let runs: [(fn(u64), u64); 4] = [
        (resize_churn::<Ebr>, 0xb0c0),
        (resize_churn::<Hazard>, 0xb0c1),
        (resize_churn::<Leak>, 0xb0c2),
        (resize_churn::<DebugReclaim>, 0xb0c3),
    ];
    for (run, seed) in runs {
        let base = Snapshot::take();
        run(seed);
        let d = Snapshot::take().delta(&base);
        assert_eq!(
            d.get(Event::ResizeBucketsMoved),
            d.get(Event::ResizeBatchOps),
            "migration batch accounting leaked a bucket (seed {seed:#x})"
        );
        if cds_obs::enabled() {
            assert!(
                d.get(Event::ResizeBucketsMoved) > 0,
                "a (1,1)-geometry map under insert churn must migrate (seed {seed:#x})"
            );
            assert!(
                d.get(Event::ResizePromoterWins) > 0,
                "a completed migration must promote its next table (seed {seed:#x})"
            );
        }
    }
}

/// The reclamation ledger never frees what was not retired: checked on
/// the absolute (monotonic) counters after churning every backend, since
/// a delta window could legitimately free garbage retired before its
/// baseline.
#[test]
fn frees_never_exceed_retires() {
    let _g = serial();
    stack_churn::<Ebr>(0xf4ee0);
    stack_churn::<Hazard>(0xf4ee1);
    stack_churn::<Leak>(0xf4ee2);
    stack_churn::<DebugReclaim>(0xf4ee3);
    DebugReclaim::collect();
    let s = Snapshot::take();
    assert!(s.get(Event::FreedEbr) <= s.get(Event::RetiredEbr));
    assert!(s.get(Event::FreedHazard) <= s.get(Event::RetiredHazard));
    assert!(s.get(Event::FreedDebug) <= s.get(Event::RetiredDebug));
    if cds_obs::enabled() {
        for (event, name) in [
            (Event::RetiredEbr, "ebr"),
            (Event::RetiredHazard, "hazard"),
            (Event::RetiredLeak, "leak"),
            (Event::RetiredDebug, "debug"),
        ] {
            assert!(
                s.get(event) > 0,
                "churn through the {name} backend retired nothing"
            );
        }
    }
}

/// Two runs from the same pinned seed must produce identical counter
/// deltas — the schedule, the op streams, and therefore every count are
/// deterministic. Tiny thread/op counts keep the run inside the PCT
/// scheduler's deterministic regime (no fairness-bound fall-through);
/// the leak backend keeps background reclamation cadence out of the
/// counts.
#[test]
fn same_seed_runs_produce_identical_snapshots() {
    let _g = serial();
    let run = || {
        let base = Snapshot::take();
        let o = StressOptions {
            threads: 2,
            ops_per_thread: 4,
            rounds: 2,
            ..opts(0xde7e0)
        };
        stress(
            StackSpec::<u64>::default(),
            &o,
            cds_stack::TreiberStack::<u64, Leak>::with_reclaimer,
            gen_stack,
            exec_stack,
        )
        .unwrap_or_else(|f| panic!("treiber/leak not linearizable: {f:?}"));
        let d = Snapshot::take().delta(&base);
        d.iter().map(|(e, v)| (e.name(), v)).collect::<Vec<_>>()
    };
    let first = run();
    let second = run();
    assert_eq!(first, second, "same seed, different telemetry");
    if cds_obs::enabled() {
        assert!(
            first.iter().any(|&(_, v)| v > 0),
            "deterministic runs recorded nothing at all"
        );
    }
}

//! The planted-bug determinism proof, isolated in its own test binary.
//!
//! Integration-test binaries run one at a time, so nothing else perturbs
//! the schedule: the seeded scheduler must *find* a planted lost-update
//! race and the printed round seed must *reproduce* it on replay. This
//! test doubles as the liveness proof for the `stress` feature wiring —
//! with the yield hooks compiled out the race window is a couple of
//! machine instructions and the schedule below cannot hit it.

use cds_atomic::{AtomicI64, Ordering};

use cds_lincheck::check_linearizable;
use cds_lincheck::specs::{CounterOp, CounterSpec};
use cds_lincheck::stress::{replay, stress, StressOptions};
use cds_lincheck::trace::{Trace, TraceParseError};

/// A deliberately racy counter: `add` is a load / yield / store, so a
/// preemption injected at the yield point loses an update.
struct RacyCounter(AtomicI64);

impl RacyCounter {
    fn add(&self, d: i64) {
        let v = self.0.load(Ordering::SeqCst);
        cds_core::stress::yield_point();
        self.0.store(v + d, Ordering::SeqCst);
    }

    fn get(&self) -> i64 {
        self.0.load(Ordering::SeqCst)
    }
}

fn racy_gen(rng: &mut cds_core::stress::SplitMix64, _t: usize) -> CounterOp {
    if rng.below(3) < 2 {
        CounterOp::Add(1 + rng.below(4) as i64)
    } else {
        CounterOp::Get
    }
}

fn racy_exec(c: &RacyCounter, op: &CounterOp) -> i64 {
    match op {
        CounterOp::Add(d) => {
            c.add(*d);
            0
        }
        CounterOp::Get => c.get(),
    }
}

#[test]
fn planted_race_is_found_and_seed_replays_it() {
    let options = StressOptions {
        rounds: 64,
        seed: 0xbad_c0de,
        ..StressOptions::default()
    };
    let demotions_before = cds_core::stress::demotions();
    let failure = stress(
        CounterSpec::default(),
        &options,
        || RacyCounter(AtomicI64::new(0)),
        racy_gen,
        racy_exec,
    )
    .expect_err("the planted lost-update race must be found");
    assert!(
        cds_core::stress::demotions() > demotions_before,
        "no preemptions injected: is the stress feature compiled in?"
    );

    assert!(!failure.history.is_empty());
    assert!(
        !failure.minimized.is_empty() && failure.minimized.len() <= failure.history.len(),
        "shrinker produced a bogus minimization: {failure:?}"
    );
    assert!(
        !check_linearizable(CounterSpec::default(), &failure.minimized),
        "minimized history must still fail"
    );

    // The printed seed is a complete reproducer: replaying that round —
    // same schedule, same per-thread op streams — fails again.
    let again = replay(
        CounterSpec::default(),
        &options,
        failure.seed,
        || RacyCounter(AtomicI64::new(0)),
        racy_gen,
        racy_exec,
    )
    .expect_err("replaying the failing seed must reproduce the failure");
    assert_eq!(again.seed, failure.seed);

    // The failure doubles as a v1 trace: the printed form round-trips and
    // carries exactly the round seed the replay above used.
    let trace = failure.trace();
    assert_eq!(trace, Trace::V1 { seed: failure.seed });
    let reparsed: Trace = trace.to_string().parse().expect("v1 trace must round-trip");
    assert_eq!(reparsed, trace);
}

/// The trace format is versioned: v1 (seed-only, what PCT failures print)
/// must keep parsing forever even though new exploration counterexamples
/// emit v2 (explicit step lists), and a future version must be rejected
/// loudly instead of misread.
#[test]
fn trace_format_versions_coexist() {
    let v1: Trace = "cds-trace v1 seed=0x5eed".parse().unwrap();
    assert_eq!(v1, Trace::V1 { seed: 0x5eed });

    let v2: Trace = "cds-trace v2 threads=3 steps=0,2,1,1,0".parse().unwrap();
    assert_eq!(
        v2,
        Trace::V2 {
            threads: 3,
            steps: vec![0, 2, 1, 1, 0],
        }
    );
    assert_eq!(v2.to_string().parse::<Trace>().unwrap(), v2);

    assert!(matches!(
        "cds-trace v99 whatever".parse::<Trace>(),
        Err(TraceParseError::UnsupportedVersion(99))
    ));
}

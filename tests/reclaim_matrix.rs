//! Cross-backend lincheck matrix: every lock-free structure instantiated
//! under every reclamation backend — epoch-based ([`cds_reclaim::Ebr`]),
//! hazard pointers ([`cds_reclaim::Hazard`]), the leaking floor
//! ([`cds_reclaim::Leak`]), and the use-after-retire checker
//! ([`cds_reclaim::DebugReclaim`]) — and run through the deterministic
//! scheduled-stress harness with pinned seeds.
//!
//! Two distinct properties ride on one run. Linearizability of each
//! recorded window proves the *algorithm* is backend-independent (the
//! `Reclaimer` abstraction did not change behavior), and surviving
//! `DebugReclaim` proves the *retire discipline* holds: any access to a
//! node retired before the accessing guard began panics with both thread
//! ids, which the harness reports with the round seed for replay.
//!
//! These tests build with the `stress` feature live, so every
//! `cds_core::stress::yield_point()` in the structures is a real
//! PCT-style preemption point; failures print a round seed that
//! `cds_lincheck::stress::replay` (or `CDS_STRESS_SEED=<seed>`)
//! reproduces deterministically.

use std::collections::hash_map::RandomState;
use std::collections::HashSet;

use cds_core::{ConcurrentMap, ConcurrentQueue, ConcurrentSet, ConcurrentStack};
use cds_lincheck::specs::{
    MapOp, MapRes, MapSpec, QueueOp, QueueRes, QueueSpec, SetOp, SetSpec, StackOp, StackRes,
    StackSpec,
};
use cds_lincheck::stress::{stress, StressOptions};
use cds_queue::Steal;
use cds_reclaim::{DebugReclaim, Ebr, Hazard, Leak, Reclaimer};

/// Per-cell pinned-seed options, unless `CDS_STRESS_SEED` overrides (the
/// replay knob, same convention as `tests/schedules.rs`).
fn opts(seed: u64) -> StressOptions {
    let defaults = StressOptions::default(); // seed from env when set
    StressOptions {
        seed: if std::env::var_os("CDS_STRESS_SEED").is_some() {
            defaults.seed
        } else {
            seed
        },
        rounds: 8,
        ..defaults
    }
}

/// Derives one pinned seed per (structure, backend) cell so every cell of
/// the matrix replays independently.
fn cell_seed<R: Reclaimer>(base: u64) -> u64 {
    let backend_tag = R::NAME
        .bytes()
        .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
    base ^ (backend_tag << 16)
}

fn gen_stack(rng: &mut cds_core::stress::SplitMix64, t: usize) -> StackOp<u64> {
    if rng.below(2) == 0 {
        StackOp::Push((t as u64) << 8 | rng.below(16))
    } else {
        StackOp::Pop
    }
}

fn gen_queue(rng: &mut cds_core::stress::SplitMix64, t: usize) -> QueueOp<u64> {
    if rng.below(2) == 0 {
        QueueOp::Enqueue((t as u64) << 8 | rng.below(16))
    } else {
        QueueOp::Dequeue
    }
}

fn gen_set(rng: &mut cds_core::stress::SplitMix64, _t: usize) -> SetOp<u64> {
    let k = rng.below(3); // few keys => real conflicts
    match rng.below(3) {
        0 => SetOp::Insert(k),
        1 => SetOp::Remove(k),
        _ => SetOp::Contains(k),
    }
}

fn stress_stack_on<R: Reclaimer>(base: u64) {
    stress(
        StackSpec::<u64>::default(),
        &opts(cell_seed::<R>(base)),
        cds_stack::TreiberStack::<u64, R>::with_reclaimer,
        gen_stack,
        |s, op| match op {
            StackOp::Push(v) => {
                s.push(*v);
                StackRes::Pushed
            }
            StackOp::Pop => StackRes::Popped(s.pop()),
        },
    )
    .unwrap_or_else(|f| panic!("treiber stack under {} not linearizable: {f:?}", R::NAME));
}

fn stress_queue_on<R: Reclaimer>(base: u64) {
    stress(
        QueueSpec::<u64>::default(),
        &opts(cell_seed::<R>(base)),
        cds_queue::MsQueue::<u64, R>::with_reclaimer,
        gen_queue,
        |q, op| match op {
            QueueOp::Enqueue(v) => {
                q.enqueue(*v);
                QueueRes::Enqueued
            }
            QueueOp::Dequeue => QueueRes::Dequeued(q.dequeue()),
        },
    )
    .unwrap_or_else(|f| panic!("ms queue under {} not linearizable: {f:?}", R::NAME));
}

fn stress_set_on<S, R>(base: u64, setup: fn() -> S, what: &str)
where
    S: ConcurrentSet<u64> + Sync,
    R: Reclaimer,
{
    stress(
        SetSpec::<u64>::default(),
        &opts(cell_seed::<R>(base)),
        setup,
        gen_set,
        |s, op| match op {
            SetOp::Insert(k) => s.insert(*k),
            SetOp::Remove(k) => s.remove(k),
            SetOp::Contains(k) => s.contains(k),
        },
    )
    .unwrap_or_else(|f| panic!("{what} under {} not linearizable: {f:?}", R::NAME));
}

fn stress_map_on<R: Reclaimer>(base: u64) {
    stress(
        MapSpec::<u64, u64>::default(),
        &opts(cell_seed::<R>(base)),
        cds_map::SplitOrderedHashMap::<u64, u64, RandomState, R>::with_reclaimer,
        |rng, _t| {
            let k = rng.below(3);
            match rng.below(3) {
                0 => MapOp::Insert(k, rng.below(100)),
                1 => MapOp::Remove(k),
                _ => MapOp::Get(k),
            }
        },
        |m, op| match op {
            MapOp::Insert(k, v) => MapRes::Changed(m.insert(*k, *v)),
            MapOp::Remove(k) => MapRes::Changed(m.remove(k)),
            MapOp::Get(k) => MapRes::Got(m.get(k)),
        },
    )
    .unwrap_or_else(|f| {
        panic!(
            "split-ordered map under {} not linearizable: {f:?}",
            R::NAME
        )
    });
}

/// The Chase–Lev deque has an owner-only `push`/`pop` API, so it cannot go
/// through the symmetric-workers lincheck harness. Instead: one owner
/// pushes a known value set and pops, stealers race `steal`, and every
/// value must surface exactly once — no loss, no duplication, no invented
/// values — deterministically seeded per backend.
fn chase_lev_on<R: Reclaimer>(base: u64) {
    const STEALERS: u64 = 3;
    const PUSHES: u64 = 2_000;
    let seed = cell_seed::<R>(base);
    let (worker, stealer) = cds_queue::ChaseLevDeque::<u64, R>::with_reclaimer();
    let mut popped: Vec<u64> = Vec::new();
    let mut stolen: Vec<Vec<u64>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..STEALERS)
            .map(|_t| {
                let stealer = stealer.clone();
                scope.spawn(move || {
                    let mut got = Vec::new();
                    let mut spins = 0u32;
                    loop {
                        match stealer.steal() {
                            Steal::Success(v) => {
                                got.push(v);
                                spins = 0;
                            }
                            Steal::Retry => {}
                            Steal::Empty => {
                                spins += 1;
                                // Owner signals completion via a sentinel
                                // count: quit after sustained emptiness.
                                if spins > 10_000 {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }
                    got
                })
            })
            .collect();

        let mut rng = cds_core::stress::SplitMix64::new(seed);
        for i in 0..PUSHES {
            worker.push(i);
            // Seeded interleaving: sometimes pop from the owner side so
            // both ends of the deque (and the buffer-growth path) churn.
            if rng.below(3) == 0 {
                if let Some(v) = worker.pop() {
                    popped.push(v);
                }
            }
        }
        while let Some(v) = worker.pop() {
            popped.push(v);
        }
        for h in handles {
            stolen.push(h.join().unwrap());
        }
    });

    let mut seen: HashSet<u64> = HashSet::new();
    for v in popped.iter().chain(stolen.iter().flatten()) {
        assert!(*v < PUSHES, "invented value {v} under {}", R::NAME);
        assert!(seen.insert(*v), "duplicate value {v} under {}", R::NAME);
    }
    assert_eq!(seen.len() as u64, PUSHES, "lost values under {}", R::NAME);
}

#[test]
fn treiber_stack_under_every_backend() {
    stress_stack_on::<Ebr>(0x3a7a1c0);
    stress_stack_on::<Hazard>(0x3a7a1c0);
    stress_stack_on::<Leak>(0x3a7a1c0);
    stress_stack_on::<DebugReclaim>(0x3a7a1c0);
}

#[test]
fn ms_queue_under_every_backend() {
    stress_queue_on::<Ebr>(0x3a7a1c1);
    stress_queue_on::<Hazard>(0x3a7a1c1);
    stress_queue_on::<Leak>(0x3a7a1c1);
    stress_queue_on::<DebugReclaim>(0x3a7a1c1);
}

#[test]
fn harris_michael_list_under_every_backend() {
    fn one<R: Reclaimer>() {
        stress_set_on::<_, R>(
            0x3a7a1c2,
            cds_list::HarrisMichaelList::<u64, R>::with_reclaimer,
            "harris-michael list",
        );
    }
    one::<Ebr>();
    one::<Hazard>();
    one::<Leak>();
    one::<DebugReclaim>();
}

#[test]
fn split_ordered_map_under_every_backend() {
    stress_map_on::<Ebr>(0x3a7a1c3);
    stress_map_on::<Hazard>(0x3a7a1c3);
    stress_map_on::<Leak>(0x3a7a1c3);
    stress_map_on::<DebugReclaim>(0x3a7a1c3);
}

#[test]
fn lock_free_skiplist_under_every_backend() {
    fn one<R: Reclaimer>() {
        stress_set_on::<_, R>(
            0x3a7a1c4,
            cds_skiplist::LockFreeSkipList::<u64, R>::with_reclaimer,
            "lock-free skiplist",
        );
    }
    one::<Ebr>();
    one::<Hazard>();
    one::<Leak>();
    one::<DebugReclaim>();
}

#[test]
fn ellen_bst_under_every_backend() {
    fn one<R: Reclaimer>() {
        stress_set_on::<_, R>(
            0x3a7a1c5,
            cds_tree::LockFreeBst::<u64, R>::with_reclaimer,
            "ellen bst",
        );
    }
    one::<Ebr>();
    one::<Hazard>();
    one::<Leak>();
    one::<DebugReclaim>();
}

#[test]
fn chase_lev_deque_under_every_backend() {
    chase_lev_on::<Ebr>(0x3a7a1c6);
    chase_lev_on::<Hazard>(0x3a7a1c6);
    chase_lev_on::<Leak>(0x3a7a1c6);
    chase_lev_on::<DebugReclaim>(0x3a7a1c6);
}

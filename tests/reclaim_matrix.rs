//! Cross-backend lincheck matrix: every lock-free structure instantiated
//! under every reclamation backend — epoch-based ([`cds_reclaim::Ebr`]),
//! hazard pointers ([`cds_reclaim::Hazard`]), the leaking floor
//! ([`cds_reclaim::Leak`]), and the use-after-retire checker
//! ([`cds_reclaim::DebugReclaim`]) — and run through the deterministic
//! scheduled-stress harness with pinned seeds.
//!
//! Two distinct properties ride on one run. Linearizability of each
//! recorded window proves the *algorithm* is backend-independent (the
//! `Reclaimer` abstraction did not change behavior), and surviving
//! `DebugReclaim` proves the *retire discipline* holds: any access to a
//! node retired before the accessing guard began panics with both thread
//! ids, which the harness reports with the round seed for replay.
//!
//! These tests build with the `stress` feature live, so every
//! `cds_core::stress::yield_point()` in the structures is a real
//! PCT-style preemption point; failures print a round seed that
//! `cds_lincheck::stress::replay` (or `CDS_STRESS_SEED=<seed>`)
//! reproduces deterministically.

use std::collections::hash_map::RandomState;
use std::collections::HashSet;

use cds_core::{ConcurrentMap, ConcurrentQueue, ConcurrentSet, ConcurrentStack};
use cds_lincheck::specs::{
    ChanOp, ChanRes, ChannelSpec, MapOp, MapRes, MapSpec, QueueOp, QueueRes, QueueSpec, SetOp,
    SetSpec, StackOp, StackRes, StackSpec,
};
use cds_lincheck::stress::{stress, StressOptions};
use cds_queue::Steal;
use cds_reclaim::{DebugReclaim, Ebr, Hazard, Leak, Reclaimer};

/// Per-cell pinned-seed options, unless `CDS_STRESS_SEED` overrides (the
/// replay knob, same convention as `tests/schedules.rs`).
fn opts(seed: u64) -> StressOptions {
    let defaults = StressOptions::default(); // seed from env when set
    StressOptions {
        seed: if std::env::var_os("CDS_STRESS_SEED").is_some() {
            defaults.seed
        } else {
            seed
        },
        rounds: 8,
        ..defaults
    }
}

/// Derives one pinned seed per (structure, backend) cell so every cell of
/// the matrix replays independently.
fn cell_seed<R: Reclaimer>(base: u64) -> u64 {
    let backend_tag = R::NAME
        .bytes()
        .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
    base ^ (backend_tag << 16)
}

fn gen_stack(rng: &mut cds_core::stress::SplitMix64, t: usize) -> StackOp<u64> {
    if rng.below(2) == 0 {
        StackOp::Push((t as u64) << 8 | rng.below(16))
    } else {
        StackOp::Pop
    }
}

fn gen_queue(rng: &mut cds_core::stress::SplitMix64, t: usize) -> QueueOp<u64> {
    if rng.below(2) == 0 {
        QueueOp::Enqueue((t as u64) << 8 | rng.below(16))
    } else {
        QueueOp::Dequeue
    }
}

fn gen_set(rng: &mut cds_core::stress::SplitMix64, _t: usize) -> SetOp<u64> {
    let k = rng.below(3); // few keys => real conflicts
    match rng.below(3) {
        0 => SetOp::Insert(k),
        1 => SetOp::Remove(k),
        _ => SetOp::Contains(k),
    }
}

fn stress_stack_on<R: Reclaimer>(base: u64) {
    stress(
        StackSpec::<u64>::default(),
        &opts(cell_seed::<R>(base)),
        cds_stack::TreiberStack::<u64, R>::with_reclaimer,
        gen_stack,
        |s, op| match op {
            StackOp::Push(v) => {
                s.push(*v);
                StackRes::Pushed
            }
            StackOp::Pop => StackRes::Popped(s.pop()),
        },
    )
    .unwrap_or_else(|f| panic!("treiber stack under {} not linearizable: {f:?}", R::NAME));
}

fn stress_queue_on<R: Reclaimer>(base: u64) {
    stress(
        QueueSpec::<u64>::default(),
        &opts(cell_seed::<R>(base)),
        cds_queue::MsQueue::<u64, R>::with_reclaimer,
        gen_queue,
        |q, op| match op {
            QueueOp::Enqueue(v) => {
                q.enqueue(*v);
                QueueRes::Enqueued
            }
            QueueOp::Dequeue => QueueRes::Dequeued(q.dequeue()),
        },
    )
    .unwrap_or_else(|f| panic!("ms queue under {} not linearizable: {f:?}", R::NAME));
}

fn stress_set_on<S, R>(base: u64, setup: fn() -> S, what: &str)
where
    S: ConcurrentSet<u64> + Sync,
    R: Reclaimer,
{
    stress(
        SetSpec::<u64>::default(),
        &opts(cell_seed::<R>(base)),
        setup,
        gen_set,
        |s, op| match op {
            SetOp::Insert(k) => s.insert(*k),
            SetOp::Remove(k) => s.remove(k),
            SetOp::Contains(k) => s.contains(k),
        },
    )
    .unwrap_or_else(|f| panic!("{what} under {} not linearizable: {f:?}", R::NAME));
}

fn stress_map_on<R: Reclaimer>(base: u64) {
    stress(
        MapSpec::<u64, u64>::default(),
        &opts(cell_seed::<R>(base)),
        cds_map::SplitOrderedHashMap::<u64, u64, RandomState, R>::with_reclaimer,
        |rng, _t| {
            let k = rng.below(3);
            match rng.below(3) {
                0 => MapOp::Insert(k, rng.below(100)),
                1 => MapOp::Remove(k),
                _ => MapOp::Get(k),
            }
        },
        |m, op| match op {
            MapOp::Insert(k, v) => MapRes::Changed(m.insert(*k, *v)),
            MapOp::Remove(k) => MapRes::Changed(m.remove(k)),
            MapOp::Get(k) => MapRes::Got(m.get(k)),
            // Not generated here (the split-ordered map's len is only
            // quiescently consistent); wired for exhaustiveness.
            MapOp::ContainsKey(k) => MapRes::Has(m.contains_key(k)),
            MapOp::Len => MapRes::Len(m.len()),
        },
    )
    .unwrap_or_else(|f| {
        panic!(
            "split-ordered map under {} not linearizable: {f:?}",
            R::NAME
        )
    });
}

/// ResizingMap cell: tiny geometry (one shard, one initial bucket) so the
/// cooperative migration protocol — install, helping, promotion, and the
/// **retire of the old bucket array** through `R`'s guard — all run inside
/// every 48-op window, under every backend. The generator exercises the
/// two resize-boundary operations (`contains_key`, `len`) alongside the
/// usual insert/remove/get mix.
fn stress_resizing_map_on<R: Reclaimer>(base: u64) {
    stress(
        MapSpec::<u64, u64>::default(),
        &StressOptions {
            ops_per_thread: 16, // enough inserts per window to force doublings
            ..opts(cell_seed::<R>(base))
        },
        || cds_map::ResizingMap::<u64, u64, RandomState, R>::with_config(1, 1),
        |rng, _t| {
            let k = rng.below(12);
            match rng.below(8) {
                0..=3 => MapOp::Insert(k, rng.below(100)),
                4 => MapOp::Remove(k),
                5 => MapOp::ContainsKey(k),
                6 => MapOp::Len,
                _ => MapOp::Get(k),
            }
        },
        |m, op| match op {
            MapOp::Insert(k, v) => MapRes::Changed(m.insert(*k, *v)),
            MapOp::Remove(k) => MapRes::Changed(m.remove(k)),
            MapOp::Get(k) => MapRes::Got(m.get(k)),
            MapOp::ContainsKey(k) => MapRes::Has(m.contains_key(k)),
            MapOp::Len => MapRes::Len(m.len()),
        },
    )
    .unwrap_or_else(|f| panic!("resizing map under {} not linearizable: {f:?}", R::NAME));
}

/// Channel cells: the spec result an operation maps to. Shared by both
/// channel rows.
fn chan_exec<R: Reclaimer>(ch: &cds_chan::Channel<u32, R>, op: &ChanOp) -> ChanRes {
    match op {
        // Unbounded sends never park, so the blocking API is safe in a
        // generated stream there; bounded rows generate `TrySend` only.
        ChanOp::Send(v) => match ch.send(*v) {
            Ok(()) => ChanRes::Sent,
            Err(cds_chan::SendError::Disconnected(_)) => ChanRes::Disconnected,
        },
        ChanOp::TrySend(v) => match ch.try_send(*v) {
            Ok(()) => ChanRes::Sent,
            Err(cds_chan::TrySendError::Full(_)) => ChanRes::Full,
            Err(cds_chan::TrySendError::Disconnected(_)) => ChanRes::Disconnected,
        },
        // Blocking `Recv` can park until close and is never generated in
        // these symmetric streams (a window where every thread draws it
        // would hang); the exploration windows in tests/explore.rs cover
        // it deterministically.
        ChanOp::Recv => unreachable!("blocking recv is not generated in matrix streams"),
        ChanOp::TryRecv => match ch.try_recv() {
            Ok(v) => ChanRes::Received(v),
            Err(cds_chan::TryRecvError::Empty) => ChanRes::Empty,
            Err(cds_chan::TryRecvError::Closed) => ChanRes::Closed,
        },
        ChanOp::Close => ChanRes::CloseDone(ch.close()),
    }
}

/// Bounded-channel cell: a 2-slot ring so `Full` results are real, with
/// close mixed into every stream so windows straddle the two-phase close
/// (disconnected sends racing drain-then-`Closed` receives).
fn stress_chan_bounded_on<R: Reclaimer>(base: u64) {
    stress(
        ChannelSpec::bounded(2),
        &opts(cell_seed::<R>(base)),
        || cds_chan::Channel::<u32, R>::bounded_with_reclaimer(2),
        |rng, t| match rng.below(8) {
            0..=2 => ChanOp::TrySend(((t as u32) << 8) | rng.below(16) as u32),
            3..=5 => ChanOp::TryRecv,
            6 => ChanOp::Close,
            _ => ChanOp::TryRecv,
        },
        chan_exec::<R>,
    )
    .unwrap_or_else(|f| panic!("bounded channel under {} not linearizable: {f:?}", R::NAME));
}

/// Unbounded-channel cell: blocking `Send` (which never parks on the
/// Michael–Scott buffer) races `TryRecv` and `Close`, exercising the
/// in-flight send window against the close path under every backend.
fn stress_chan_unbounded_on<R: Reclaimer>(base: u64) {
    stress(
        ChannelSpec::unbounded(),
        &opts(cell_seed::<R>(base)),
        cds_chan::Channel::<u32, R>::unbounded_with_reclaimer,
        |rng, t| match rng.below(8) {
            0..=2 => ChanOp::Send(((t as u32) << 8) | rng.below(16) as u32),
            3..=5 => ChanOp::TryRecv,
            6 => ChanOp::Close,
            _ => ChanOp::TryRecv,
        },
        chan_exec::<R>,
    )
    .unwrap_or_else(|f| {
        panic!(
            "unbounded channel under {} not linearizable: {f:?}",
            R::NAME
        )
    });
}

/// The Chase–Lev deque has an owner-only `push`/`pop` API, so it cannot go
/// through the symmetric-workers lincheck harness. Instead: one owner
/// pushes a known value set and pops, stealers race `steal`, and every
/// value must surface exactly once — no loss, no duplication, no invented
/// values — deterministically seeded per backend.
fn chase_lev_on<R: Reclaimer>(base: u64) {
    const STEALERS: u64 = 3;
    const PUSHES: u64 = 2_000;
    let seed = cell_seed::<R>(base);
    let (worker, stealer) = cds_queue::ChaseLevDeque::<u64, R>::with_reclaimer();
    let mut popped: Vec<u64> = Vec::new();
    let mut stolen: Vec<Vec<u64>> = Vec::new();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..STEALERS)
            .map(|_t| {
                let stealer = stealer.clone();
                scope.spawn(move || {
                    let mut got = Vec::new();
                    let mut spins = 0u32;
                    loop {
                        match stealer.steal() {
                            Steal::Success(v) => {
                                got.push(v);
                                spins = 0;
                            }
                            Steal::Retry => {}
                            Steal::Empty => {
                                spins += 1;
                                // Owner signals completion via a sentinel
                                // count: quit after sustained emptiness.
                                if spins > 10_000 {
                                    break;
                                }
                                std::hint::spin_loop();
                            }
                        }
                    }
                    got
                })
            })
            .collect();

        let mut rng = cds_core::stress::SplitMix64::new(seed);
        for i in 0..PUSHES {
            worker.push(i);
            // Seeded interleaving: sometimes pop from the owner side so
            // both ends of the deque (and the buffer-growth path) churn.
            if rng.below(3) == 0 {
                if let Some(v) = worker.pop() {
                    popped.push(v);
                }
            }
        }
        while let Some(v) = worker.pop() {
            popped.push(v);
        }
        for h in handles {
            stolen.push(h.join().unwrap());
        }
    });

    let mut seen: HashSet<u64> = HashSet::new();
    for v in popped.iter().chain(stolen.iter().flatten()) {
        assert!(*v < PUSHES, "invented value {v} under {}", R::NAME);
        assert!(seen.insert(*v), "duplicate value {v} under {}", R::NAME);
    }
    assert_eq!(seen.len() as u64, PUSHES, "lost values under {}", R::NAME);
}

#[test]
fn treiber_stack_under_every_backend() {
    stress_stack_on::<Ebr>(0x3a7a1c0);
    stress_stack_on::<Hazard>(0x3a7a1c0);
    stress_stack_on::<Leak>(0x3a7a1c0);
    stress_stack_on::<DebugReclaim>(0x3a7a1c0);
}

#[test]
fn ms_queue_under_every_backend() {
    stress_queue_on::<Ebr>(0x3a7a1c1);
    stress_queue_on::<Hazard>(0x3a7a1c1);
    stress_queue_on::<Leak>(0x3a7a1c1);
    stress_queue_on::<DebugReclaim>(0x3a7a1c1);
}

#[test]
fn harris_michael_list_under_every_backend() {
    fn one<R: Reclaimer>() {
        stress_set_on::<_, R>(
            0x3a7a1c2,
            cds_list::HarrisMichaelList::<u64, R>::with_reclaimer,
            "harris-michael list",
        );
    }
    one::<Ebr>();
    one::<Hazard>();
    one::<Leak>();
    one::<DebugReclaim>();
}

#[test]
fn split_ordered_map_under_every_backend() {
    stress_map_on::<Ebr>(0x3a7a1c3);
    stress_map_on::<Hazard>(0x3a7a1c3);
    stress_map_on::<Leak>(0x3a7a1c3);
    stress_map_on::<DebugReclaim>(0x3a7a1c3);
}

#[test]
fn lock_free_skiplist_under_every_backend() {
    fn one<R: Reclaimer>() {
        stress_set_on::<_, R>(
            0x3a7a1c4,
            cds_skiplist::LockFreeSkipList::<u64, R>::with_reclaimer,
            "lock-free skiplist",
        );
    }
    one::<Ebr>();
    one::<Hazard>();
    one::<Leak>();
    one::<DebugReclaim>();
}

#[test]
fn ellen_bst_under_every_backend() {
    fn one<R: Reclaimer>() {
        stress_set_on::<_, R>(
            0x3a7a1c5,
            cds_tree::LockFreeBst::<u64, R>::with_reclaimer,
            "ellen bst",
        );
    }
    one::<Ebr>();
    one::<Hazard>();
    one::<Leak>();
    one::<DebugReclaim>();
}

#[test]
fn chase_lev_deque_under_every_backend() {
    chase_lev_on::<Ebr>(0x3a7a1c6);
    chase_lev_on::<Hazard>(0x3a7a1c6);
    chase_lev_on::<Leak>(0x3a7a1c6);
    chase_lev_on::<DebugReclaim>(0x3a7a1c6);
}

#[test]
fn resizing_map_under_every_backend() {
    stress_resizing_map_on::<Ebr>(0x3a7a1c7);
    stress_resizing_map_on::<Hazard>(0x3a7a1c7);
    stress_resizing_map_on::<Leak>(0x3a7a1c7);
    stress_resizing_map_on::<DebugReclaim>(0x3a7a1c7);
}

#[test]
fn bounded_channel_under_every_backend() {
    stress_chan_bounded_on::<Ebr>(0x3a7a1c8);
    stress_chan_bounded_on::<Hazard>(0x3a7a1c8);
    stress_chan_bounded_on::<Leak>(0x3a7a1c8);
    stress_chan_bounded_on::<DebugReclaim>(0x3a7a1c8);
}

#[test]
fn unbounded_channel_under_every_backend() {
    stress_chan_unbounded_on::<Ebr>(0x3a7a1c9);
    stress_chan_unbounded_on::<Hazard>(0x3a7a1c9);
    stress_chan_unbounded_on::<Leak>(0x3a7a1c9);
    stress_chan_unbounded_on::<DebugReclaim>(0x3a7a1c9);
}

/// Plants the resize bug the retire contract exists to rule out — keeping
/// a raw pointer to a **bucket array** across the promotion that retires
/// it — and proves `DebugReclaim` catches it and the prop harness shrinks
/// the script to its `[Grow, StaleScan]` core with a replayable seed.
///
/// This is the array-granularity analogue of the node-level regression in
/// `tests/schedules.rs`: here the retired object is a whole `Table` (a
/// boxed slice of buckets), exactly what `ResizingMap` hands to
/// `ReclaimGuard::retire` at promotion.
#[test]
fn debug_reclaim_catches_use_after_retire_of_old_bucket_array() {
    use cds_atomic::Ordering;
    use cds_lincheck::prop::{forall_vec, Config, Prng};
    use cds_reclaim::epoch::{Atomic, Owned, Shared};
    use cds_reclaim::{DebugGuard, ReclaimGuard};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[derive(Debug, Clone, Copy)]
    enum Op {
        Grow,
        StaleScan,
    }

    /// A bucket array like the one `ResizingMap` retires at promotion.
    struct Table {
        buckets: Box<[Vec<(u64, u64)>]>,
    }

    impl Table {
        fn sized(n: usize) -> Table {
            Table {
                buckets: (0..n).map(|_| vec![(7, 7)]).collect(),
            }
        }
    }

    /// The planted bug: `scan_start` is captured at construction and
    /// never re-read, so after one `grow` (which swaps in a doubled table
    /// and retires the old array) the scan walks a retired bucket array
    /// under a guard that began *after* the retire.
    struct BuggyResizer {
        current: Atomic<Table>,
        scan_start: *mut Table,
        /// Entered before every retire so the poison record survives in
        /// quarantine for the checker to trip on (same idiom as the
        /// node-level regression).
        _keepalive: DebugGuard,
    }

    impl BuggyResizer {
        fn new() -> Self {
            let keepalive = DebugReclaim::enter();
            let current = Atomic::new(Table::sized(1));
            let scan_start = current.load_raw(Ordering::Relaxed);
            BuggyResizer {
                current,
                scan_start,
                _keepalive: keepalive,
            }
        }

        fn grow(&self) {
            let guard = DebugReclaim::enter_blanket();
            let old = self.current.load(Ordering::Acquire, &guard);
            // SAFETY: protected by the blanket guard.
            let doubled = Table::sized(unsafe { old.deref() }.buckets.len() * 2);
            let fresh = Owned::new(doubled).into_shared(&guard);
            self.current.store(fresh, Ordering::Release);
            // SAFETY: unlinked by the store above; retired exactly once.
            unsafe { guard.retire(old) };
        }

        fn stale_scan(&self) -> usize {
            let guard = DebugReclaim::enter_blanket();
            // BUG: protects the construction-time array without re-reading
            // `current`. DebugReclaim panics here once `grow` has retired
            // that array before this guard began.
            let p = guard.protect_ptr(0, Shared::from_raw(self.scan_start));
            // SAFETY: only reached while the array was never retired (the
            // checker panics above otherwise).
            unsafe { p.deref() }.buckets.iter().map(Vec::len).sum()
        }
    }

    impl Drop for BuggyResizer {
        fn drop(&mut self) {
            let p = self.current.load_raw(Ordering::Relaxed);
            // SAFETY: the current table was never retired; the test owns
            // the structure exclusively here.
            unsafe { drop(Box::from_raw(p)) };
        }
    }

    let config = Config {
        cases: 64,
        seed: 0xdeb0a44a1, // pinned: the report below must be reproducible
        max_len: 12,
    };
    let gen = |rng: &mut Prng| {
        if rng.below(2) == 0 {
            Op::Grow
        } else {
            Op::StaleScan
        }
    };
    let err = catch_unwind(AssertUnwindSafe(|| {
        forall_vec(&config, gen, |script: &[Op]| {
            let r = BuggyResizer::new();
            for op in script {
                match op {
                    Op::Grow => r.grow(),
                    Op::StaleScan => {
                        r.stale_scan();
                    }
                }
            }
        });
    }))
    .expect_err("the planted bucket-array use-after-retire must be caught");

    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("use-after-retire"),
        "wrong failure kind: {msg}"
    );
    assert!(
        msg.contains("minimized to 2 elems"),
        "shrinker did not reach the [Grow, StaleScan] core: {msg}"
    );
    assert!(
        msg.contains("CDS_PROP_SEED"),
        "missing the replay hint: {msg}"
    );

    // Drain the quarantined tables now that every guard is gone so later
    // tests see a clean registry.
    DebugReclaim::collect();
    assert_eq!(DebugReclaim::retired_backlog(), 0);
}

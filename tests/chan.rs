//! Scheduled property tests for the `cds-chan` blocking MPMC channels.
//!
//! Built with the root crate's self-dev-dependency (`stress` +
//! `telemetry`), so the channels' yield points are real PCT preemption
//! points, parked threads spin through the scheduler instead of the
//! kernel, and the `cds-obs` counters are live. Two properties anchor
//! the suite:
//!
//! * **Message conservation** — at quiescence every successfully sent
//!   message was received exactly once or drained by the channel's drop,
//!   witnessed twice over: by the channel's model counters
//!   (`sent`/`received`) and by the telemetry identity
//!   `chan_sends == chan_recvs + chan_drained_at_drop`.
//! * **Per-producer FIFO** — each consumer observes every producer's
//!   messages in send order (the MPMC guarantee: the global order is
//!   up for grabs, each producer's lane is not).
//!
//! The counters are global, so every test takes the [`serial`] lock and
//! measures through baseline/delta snapshot pairs.

use cds_atomic::{AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex, MutexGuard, OnceLock};

use cds_chan::{bounded, unbounded, Select};
use cds_core::stress as sched;
use cds_core::stress::StressConfig;
use cds_obs::{Event, Snapshot};

/// Serializes the tests in this binary: scheduler installs must not
/// overlap and one test's scheduled run must not land inside another's
/// baseline/delta window.
fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn install(seed: u64) -> sched::StressRun {
    sched::install(StressConfig {
        seed,
        change_period: 3,
        backoff_denom: 0,
        backoff_spins: 0,
    })
}

/// All messages consumed: 2 producers blocking-send into a capacity-4
/// ring (forcing send-side parks), the last producer to finish closes,
/// 2 consumers drain until `Closed`. Conservation must hold with zero
/// drop residue.
#[test]
fn scheduled_bounded_conserves_all_messages() {
    let _guard = serial();
    const PRODUCERS: usize = 2;
    const CONSUMERS: usize = 2;
    const PER: u64 = 25;

    let run = install(0xc4a70);
    let base = Snapshot::take();
    let ch = bounded::<u64>(4);
    let done = AtomicUsize::new(0);
    let start = Barrier::new(PRODUCERS + CONSUMERS);
    let consumed: u64 = std::thread::scope(|s| {
        for t in 0..PRODUCERS {
            let ch = ch.clone();
            let done = &done;
            let start = &start;
            s.spawn(move || {
                let _slot = sched::register(t);
                start.wait();
                for i in 0..PER {
                    ch.send(((t as u64) << 32) | i).unwrap();
                }
                if done.fetch_add(1, Ordering::SeqCst) + 1 == PRODUCERS {
                    ch.close();
                }
            });
        }
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|t| {
                let ch = ch.clone();
                let start = &start;
                s.spawn(move || {
                    let _slot = sched::register(PRODUCERS + t);
                    start.wait();
                    let mut n = 0u64;
                    while ch.recv().is_ok() {
                        n += 1;
                    }
                    n
                })
            })
            .collect();
        consumers.into_iter().map(|h| h.join().unwrap()).sum()
    });
    drop(run);

    let total = PRODUCERS as u64 * PER;
    assert_eq!(consumed, total);
    assert_eq!((ch.sent(), ch.received()), (total, total));
    drop(ch);
    let delta = Snapshot::take().delta(&base);
    if cds_obs::enabled() {
        assert_eq!(delta.get(Event::ChanSends), total);
        assert_eq!(delta.get(Event::ChanRecvs), total);
        assert_eq!(delta.get(Event::ChanDrainedAtDrop), 0);
    }
}

/// Partial consumption: the consumer takes only half the messages, the
/// rest must surface as `chan_drained_at_drop` when the last handle
/// drops — the other arm of the conservation identity.
#[test]
fn scheduled_unbounded_residual_drains_at_drop() {
    let _guard = serial();
    const PRODUCERS: usize = 2;
    const PER: u64 = 20;
    const TAKE: u64 = PRODUCERS as u64 * PER / 2;

    let run = install(0xc4a71);
    let base = Snapshot::take();
    let ch = unbounded::<u64>();
    let start = Barrier::new(PRODUCERS + 1);
    std::thread::scope(|s| {
        for t in 0..PRODUCERS {
            let ch = ch.clone();
            let start = &start;
            s.spawn(move || {
                let _slot = sched::register(t);
                start.wait();
                for i in 0..PER {
                    ch.send(((t as u64) << 32) | i).unwrap();
                }
            });
        }
        let ch = ch.clone();
        let start = &start;
        s.spawn(move || {
            let _slot = sched::register(PRODUCERS);
            start.wait();
            for _ in 0..TAKE {
                ch.recv().unwrap();
            }
        });
    });
    drop(run);

    let total = PRODUCERS as u64 * PER;
    assert_eq!((ch.sent(), ch.received()), (total, TAKE));
    drop(ch);
    let delta = Snapshot::take().delta(&base);
    if cds_obs::enabled() {
        assert_eq!(delta.get(Event::ChanSends), total);
        assert_eq!(delta.get(Event::ChanRecvs), TAKE);
        assert_eq!(delta.get(Event::ChanDrainedAtDrop), total - TAKE);
        assert_eq!(
            delta.get(Event::ChanSends),
            delta.get(Event::ChanRecvs) + delta.get(Event::ChanDrainedAtDrop),
        );
    }
}

/// Per-producer FIFO through a tiny ring under schedule: every consumer
/// sees each producer's sequence numbers strictly increasing, and the
/// consumers' multiset union is exactly what was sent.
#[test]
fn scheduled_per_producer_fifo() {
    let _guard = serial();
    const PRODUCERS: usize = 3;
    const CONSUMERS: usize = 2;
    const PER: u64 = 15;

    let run = install(0xc4a72);
    let ch = bounded::<(usize, u64)>(4);
    let done = AtomicUsize::new(0);
    let start = Barrier::new(PRODUCERS + CONSUMERS);
    let logs: Vec<Vec<(usize, u64)>> = std::thread::scope(|s| {
        for t in 0..PRODUCERS {
            let ch = ch.clone();
            let done = &done;
            let start = &start;
            s.spawn(move || {
                let _slot = sched::register(t);
                start.wait();
                for i in 0..PER {
                    ch.send((t, i)).unwrap();
                }
                if done.fetch_add(1, Ordering::SeqCst) + 1 == PRODUCERS {
                    ch.close();
                }
            });
        }
        let consumers: Vec<_> = (0..CONSUMERS)
            .map(|t| {
                let ch = ch.clone();
                let start = &start;
                s.spawn(move || {
                    let _slot = sched::register(PRODUCERS + t);
                    start.wait();
                    let mut log = Vec::new();
                    while let Ok(msg) = ch.recv() {
                        log.push(msg);
                    }
                    log
                })
            })
            .collect();
        consumers.into_iter().map(|h| h.join().unwrap()).collect()
    });
    drop(run);

    for (c, log) in logs.iter().enumerate() {
        for p in 0..PRODUCERS {
            let seqs: Vec<u64> = log
                .iter()
                .filter(|(q, _)| *q == p)
                .map(|&(_, i)| i)
                .collect();
            assert!(
                seqs.windows(2).all(|w| w[0] < w[1]),
                "consumer {c} saw producer {p} out of order: {seqs:?}"
            );
        }
    }
    let mut all: Vec<(usize, u64)> = logs.into_iter().flatten().collect();
    all.sort_unstable();
    let expected: Vec<(usize, u64)> = (0..PRODUCERS)
        .flat_map(|p| (0..PER).map(move |i| (p, i)))
        .collect();
    assert_eq!(all, expected, "lost or duplicated messages");
}

/// Select under schedule: one consumer multiplexes a bounded and an
/// unbounded channel while dedicated producers fill and close each.
/// The select must deliver every message exactly once, per-channel
/// FIFO, and report `Closed` only after both lanes are closed+drained.
#[test]
fn scheduled_select_multiplexes_two_lanes() {
    let _guard = serial();
    const PER: u64 = 12;

    let run = install(0xc4a73);
    let a = bounded::<u64>(2);
    let b = unbounded::<u64>();
    let start = Barrier::new(3);
    let log: Vec<(usize, u64)> = std::thread::scope(|s| {
        {
            let a = a.clone();
            let start = &start;
            s.spawn(move || {
                let _slot = sched::register(0);
                start.wait();
                for i in 0..PER {
                    a.send(i).unwrap();
                }
                a.close();
            });
        }
        {
            let b = b.clone();
            let start = &start;
            s.spawn(move || {
                let _slot = sched::register(1);
                start.wait();
                for i in 0..PER {
                    b.send(100 + i).unwrap();
                }
                b.close();
            });
        }
        let consumer = {
            let a = a.clone();
            let b = b.clone();
            let start = &start;
            s.spawn(move || {
                let _slot = sched::register(2);
                start.wait();
                let mut sel = Select::new(&[&a, &b]);
                let mut log = Vec::new();
                while let Ok(hit) = sel.recv() {
                    log.push(hit);
                }
                log
            })
        };
        consumer.join().unwrap()
    });
    drop(run);

    let from_a: Vec<u64> = log
        .iter()
        .filter(|(i, _)| *i == 0)
        .map(|&(_, v)| v)
        .collect();
    let from_b: Vec<u64> = log
        .iter()
        .filter(|(i, _)| *i == 1)
        .map(|&(_, v)| v)
        .collect();
    assert_eq!(from_a, (0..PER).collect::<Vec<_>>());
    assert_eq!(from_b, (100..100 + PER).collect::<Vec<_>>());
}

/// The executor's channel-backed scoped fork-join (native timing): all
/// results arrive, in submission order, through the bounded gather
/// channel.
#[test]
fn scoped_fork_join_collects_in_order() {
    let _guard = serial();
    let pool = cds_exec::Executor::new(3);
    let out = pool.scoped((0..32u64).map(|i| move || i * 3).collect::<Vec<_>>());
    assert_eq!(out, (0..32u64).map(|i| i * 3).collect::<Vec<_>>());
    pool.shutdown();
}

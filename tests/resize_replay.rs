//! The migration-race determinism proof, isolated in its own test binary
//! (the `tests/replay.rs` pattern): schedule-sensitive seed-replay
//! assertions share a process with nothing else, so parallel test
//! threads cannot perturb the deterministic scheduler. The planted bug
//! is the migration protocol of [`cds_map::ResizingMap`] with its
//! hold-the-source-lock rule deleted; the seeded scheduler must *find*
//! the resulting lost-key window, ddmin must shrink it, and the printed
//! round seed must reproduce it on replay.

use cds_atomic::{AtomicBool, Ordering};

use cds_lincheck::specs::{MapOp, MapRes, MapSpec};
use cds_lincheck::stress::{replay, stress, StressOptions};
use parking_lot::Mutex;

/// A deliberately broken miniature of the migration protocol: the
/// migrating thread **releases the source lock while the entries are in
/// neither table** (the real `ResizingMap` holds the source-bucket lock
/// for the whole move — this structure is that rule deleted). A lookup
/// scheduled into the gap misses a key that was inserted and never
/// removed: a non-linearizable history the PCT seed below finds, ddmin
/// shrinks, and the printed round seed replays.
struct RacyMigratingMap {
    old: Mutex<Vec<(u64, u64)>>,
    new: Mutex<Vec<(u64, u64)>>,
    promoted: AtomicBool,
}

impl RacyMigratingMap {
    fn new() -> Self {
        RacyMigratingMap {
            old: Mutex::new(Vec::new()),
            new: Mutex::new(Vec::new()),
            promoted: AtomicBool::new(false),
        }
    }

    fn table(&self) -> &Mutex<Vec<(u64, u64)>> {
        if self.promoted.load(Ordering::Acquire) {
            &self.new
        } else {
            &self.old
        }
    }

    fn insert(&self, k: u64, v: u64) -> bool {
        let inserted = {
            let mut t = self.table().lock();
            cds_core::stress::yield_point();
            if t.iter().any(|(ek, _)| *ek == k) {
                false
            } else {
                t.push((k, v));
                true
            }
        };
        if !self.promoted.load(Ordering::Acquire) && self.old.lock().len() > 2 {
            self.racy_migrate();
        }
        inserted
    }

    /// The planted bug: drain the source, drop its lock, and only then
    /// fill the destination. Between the two locks every drained entry is
    /// unreachable.
    fn racy_migrate(&self) {
        let moved: Vec<(u64, u64)> = {
            let mut t = self.old.lock();
            t.drain(..).collect()
        };
        cds_core::stress::yield_point(); // the gap a seed can schedule into
        let mut n = self.new.lock();
        n.extend(moved);
        self.promoted.store(true, Ordering::Release);
    }

    fn get(&self, k: u64) -> Option<u64> {
        let t = self.table().lock();
        cds_core::stress::yield_point();
        t.iter().find(|(ek, _)| *ek == k).map(|(_, v)| *v)
    }

    fn remove(&self, k: u64) -> bool {
        let mut t = self.table().lock();
        cds_core::stress::yield_point();
        match t.iter().position(|(ek, _)| *ek == k) {
            Some(i) => {
                t.swap_remove(i);
                true
            }
            None => false,
        }
    }
}

fn racy_gen(rng: &mut cds_core::stress::SplitMix64, _t: usize) -> MapOp<u64, u64> {
    let k = rng.below(4);
    match rng.below(4) {
        0..=1 => MapOp::Insert(k, rng.below(100)),
        2 => MapOp::Get(k),
        _ => MapOp::Remove(k),
    }
}

fn racy_exec(m: &RacyMigratingMap, op: &MapOp<u64, u64>) -> MapRes<u64> {
    match op {
        MapOp::Insert(k, v) => MapRes::Changed(m.insert(*k, *v)),
        MapOp::Remove(k) => MapRes::Changed(m.remove(*k)),
        MapOp::Get(k) => MapRes::Got(m.get(*k)),
        MapOp::ContainsKey(k) => MapRes::Has(m.get(*k).is_some()),
        MapOp::Len => MapRes::Len(0),
    }
}

/// Found during development of the migration protocol; kept as a
/// regression that (a) the harness can see this class of bug at all and
/// (b) the shrunk seed stays a complete reproducer.
#[test]
fn migration_gap_race_is_found_shrunk_and_seed_replays() {
    let options = StressOptions {
        rounds: 64,
        seed: 0x4e512e3,
        ops_per_thread: 8,
        ..StressOptions::default()
    };
    let demotions_before = cds_core::stress::demotions();
    let failure = stress(
        MapSpec::<u64, u64>::default(),
        &options,
        RacyMigratingMap::new,
        racy_gen,
        racy_exec,
    )
    .expect_err("the lock-gap migration race must be found");
    assert!(
        cds_core::stress::demotions() > demotions_before,
        "no preemptions injected: is the stress feature compiled in?"
    );

    assert!(
        !failure.minimized.is_empty() && failure.minimized.len() <= failure.history.len(),
        "shrinker produced a bogus minimization: {failure:?}"
    );
    assert!(
        !cds_lincheck::check_linearizable(MapSpec::<u64, u64>::default(), &failure.minimized),
        "minimized history must still fail"
    );

    // The printed round seed is a complete reproducer. The scheduler's
    // fairness bound can fall through when external machine load
    // deschedules the token holder (see `cds_core::stress`), perturbing a
    // single replay, so allow a few attempts before declaring the seed
    // stale.
    let again = (0..3)
        .find_map(|_| {
            replay(
                MapSpec::<u64, u64>::default(),
                &options,
                failure.seed,
                RacyMigratingMap::new,
                racy_gen,
                racy_exec,
            )
            .err()
        })
        .expect("replaying the failing seed must reproduce the race");
    assert_eq!(again.seed, failure.seed);
}

//! Property-based tests on core invariants, driven by the in-tree seeded
//! harness (`cds_lincheck::prop`).
//!
//! Sequential equivalence: under *any* sequence of operations, every
//! concurrent implementation used single-threaded must behave exactly like
//! the obvious `std` model. This catches structural bugs (lost nodes,
//! broken tower/bucket bookkeeping) that fixed unit tests miss. Failures
//! print a root seed and a ddmin-minimized action sequence; replay with
//! `CDS_PROP_SEED=<seed> cargo test <name>`.

use std::collections::{BTreeSet, HashMap, VecDeque};

use cds_core::{
    ConcurrentMap, ConcurrentPriorityQueue, ConcurrentQueue, ConcurrentSet, ConcurrentStack,
};
use cds_lincheck::prop::{forall_vec, Config, Prng};

#[derive(Debug, Clone)]
enum SetAction {
    Insert(u16),
    Remove(u16),
    Contains(u16),
}

fn gen_set_action(rng: &mut Prng) -> SetAction {
    let key = rng.below(64) as u16;
    match rng.below(3) {
        0 => SetAction::Insert(key),
        1 => SetAction::Remove(key),
        _ => SetAction::Contains(key),
    }
}

fn run_set_model<S: ConcurrentSet<u16> + Default>(actions: &[SetAction]) {
    let set = S::default();
    let mut model = BTreeSet::new();
    for a in actions {
        match a {
            SetAction::Insert(k) => assert_eq!(set.insert(*k), model.insert(*k), "insert {k}"),
            SetAction::Remove(k) => assert_eq!(set.remove(k), model.remove(k), "remove {k}"),
            SetAction::Contains(k) => {
                assert_eq!(set.contains(k), model.contains(k), "contains {k}")
            }
        }
        assert_eq!(set.len(), model.len(), "len after {a:?}");
    }
}

#[test]
fn list_sets_match_btreeset() {
    forall_vec(&Config::new(64, 200), gen_set_action, |actions| {
        run_set_model::<cds_list::CoarseList<u16>>(actions);
        run_set_model::<cds_list::FineList<u16>>(actions);
        run_set_model::<cds_list::OptimisticList<u16>>(actions);
        run_set_model::<cds_list::LazyList<u16>>(actions);
        run_set_model::<cds_list::HarrisMichaelList<u16>>(actions);
    });
}

#[test]
fn skiplists_match_btreeset() {
    forall_vec(&Config::new(64, 200), gen_set_action, |actions| {
        run_set_model::<cds_skiplist::CoarseSkipList<u16>>(actions);
        run_set_model::<cds_skiplist::LazySkipList<u16>>(actions);
        run_set_model::<cds_skiplist::LockFreeSkipList<u16>>(actions);
    });
}

#[test]
fn trees_match_btreeset() {
    forall_vec(&Config::new(64, 200), gen_set_action, |actions| {
        run_set_model::<cds_tree::CoarseBst<u16>>(actions);
        run_set_model::<cds_tree::FineBst<u16>>(actions);
        run_set_model::<cds_tree::LockFreeBst<u16>>(actions);
    });
}

#[test]
fn stacks_match_vec() {
    // Some(v) = push v; None = pop (interleaved, unlike fixed phases).
    fn check<S: ConcurrentStack<u32> + Default>(ops: &[Option<u32>]) {
        let s = S::default();
        let mut model = Vec::new();
        for op in ops {
            match op {
                Some(v) => {
                    s.push(*v);
                    model.push(*v);
                }
                None => assert_eq!(s.pop(), model.pop()),
            }
        }
        assert_eq!(s.is_empty(), model.is_empty());
    }
    let gen = |rng: &mut Prng| {
        if rng.below(2) == 0 {
            Some(rng.next_u64() as u32)
        } else {
            None
        }
    };
    forall_vec(&Config::new(64, 200), gen, |ops: &[Option<u32>]| {
        check::<cds_stack::CoarseStack<u32>>(ops);
        check::<cds_stack::TreiberStack<u32>>(ops);
        check::<cds_stack::TreiberStack<u32, cds_reclaim::Hazard>>(ops);
        check::<cds_stack::TreiberStack<u32, cds_reclaim::DebugReclaim>>(ops);
        check::<cds_stack::EliminationBackoffStack<u32>>(ops);
        check::<cds_stack::FcStack<u32>>(ops);
    });
}

#[test]
fn queues_match_vecdeque() {
    // Some(v) = enqueue v; None = dequeue.
    fn check<Q: ConcurrentQueue<u32> + Default>(ops: &[Option<u32>]) {
        let q = Q::default();
        let mut model = VecDeque::new();
        for op in ops {
            match op {
                Some(v) => {
                    q.enqueue(*v);
                    model.push_back(*v);
                }
                None => assert_eq!(q.dequeue(), model.pop_front()),
            }
        }
        assert_eq!(q.is_empty(), model.is_empty());
    }
    let gen = |rng: &mut Prng| {
        if rng.below(2) == 0 {
            Some(rng.next_u64() as u32)
        } else {
            None
        }
    };
    forall_vec(&Config::new(64, 200), gen, |ops: &[Option<u32>]| {
        check::<cds_queue::CoarseQueue<u32>>(ops);
        check::<cds_queue::TwoLockQueue<u32>>(ops);
        check::<cds_queue::MsQueue<u32>>(ops);
        check::<cds_queue::BoundedQueue<u32>>(ops);
        check::<cds_queue::FcQueue<u32>>(ops);
    });
}

#[test]
fn maps_match_hashmap() {
    fn check<M: ConcurrentMap<u16, u32> + Default>(ops: &[(u8, u16, u32)]) {
        let m = M::default();
        let mut model: HashMap<u16, u32> = HashMap::new();
        for (kind, k, v) in ops {
            match kind {
                0 => {
                    let inserted = if model.contains_key(k) {
                        false
                    } else {
                        model.insert(*k, *v);
                        true
                    };
                    assert_eq!(m.insert(*k, *v), inserted);
                }
                1 => assert_eq!(m.remove(k), model.remove(k).is_some()),
                _ => assert_eq!(m.get(k), model.get(k).copied()),
            }
        }
        assert_eq!(m.len(), model.len());
    }
    let gen = |rng: &mut Prng| {
        (
            rng.below(3) as u8,
            rng.below(64) as u16,
            rng.next_u64() as u32,
        )
    };
    forall_vec(&Config::new(64, 200), gen, |ops: &[(u8, u16, u32)]| {
        check::<cds_map::CoarseMap<u16, u32>>(ops);
        check::<cds_map::StripedHashMap<u16, u32>>(ops);
        check::<cds_map::SplitOrderedHashMap<u16, u32>>(ops);
    });
}

#[test]
fn priority_queues_match_btreeset() {
    // Some(k) = insert k; None = remove_min.
    fn check<P: ConcurrentPriorityQueue<i64> + Default>(ops: &[Option<i64>]) {
        let p = P::default();
        let mut model = BTreeSet::new();
        for op in ops {
            match op {
                Some(k) => assert_eq!(p.insert(*k), model.insert(*k)),
                None => {
                    let want = model.iter().next().copied();
                    if let Some(w) = want {
                        model.remove(&w);
                    }
                    assert_eq!(p.remove_min(), want);
                }
            }
            assert_eq!(p.len(), model.len());
        }
    }
    let gen = |rng: &mut Prng| {
        if rng.below(3) < 2 {
            Some(rng.below(64) as i64)
        } else {
            None
        }
    };
    forall_vec(&Config::new(64, 200), gen, |ops: &[Option<i64>]| {
        check::<cds_prio::CoarseBinaryHeap<i64>>(ops);
        check::<cds_prio::SkipListPriorityQueue<i64>>(ops);
    });
}

#[test]
fn seqlock_reads_equal_last_write() {
    let gen = |rng: &mut Prng| (rng.next_u64(), rng.next_u64());
    forall_vec(&Config::new(64, 50), gen, |writes: &[(u64, u64)]| {
        let lock = cds_sync::SeqLock::new((0u64, 0u64));
        for w in writes {
            lock.write(*w);
            assert_eq!(lock.read(), *w);
        }
        if let Some(last) = writes.last() {
            assert_eq!(lock.read(), *last);
        }
    });
}

//! Property-based tests (proptest) on core invariants.
//!
//! Sequential equivalence: under *any* sequence of operations, every
//! concurrent implementation used single-threaded must behave exactly like
//! the obvious `std` model. This catches structural bugs (lost nodes,
//! broken tower/bucket bookkeeping) that fixed unit tests miss.

use std::collections::{BTreeSet, HashMap, VecDeque};

use cds_core::{
    ConcurrentMap, ConcurrentPriorityQueue, ConcurrentQueue, ConcurrentSet, ConcurrentStack,
};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum SetAction {
    Insert(u16),
    Remove(u16),
    Contains(u16),
}

fn set_actions() -> impl Strategy<Value = Vec<SetAction>> {
    proptest::collection::vec(
        prop_oneof![
            (0u16..64).prop_map(SetAction::Insert),
            (0u16..64).prop_map(SetAction::Remove),
            (0u16..64).prop_map(SetAction::Contains),
        ],
        0..200,
    )
}

fn run_set_model<S: ConcurrentSet<u16> + Default>(actions: &[SetAction]) {
    let set = S::default();
    let mut model = BTreeSet::new();
    for a in actions {
        match a {
            SetAction::Insert(k) => assert_eq!(set.insert(*k), model.insert(*k), "insert {k}"),
            SetAction::Remove(k) => assert_eq!(set.remove(k), model.remove(k), "remove {k}"),
            SetAction::Contains(k) => {
                assert_eq!(set.contains(k), model.contains(k), "contains {k}")
            }
        }
        assert_eq!(set.len(), model.len(), "len after {a:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn list_sets_match_btreeset(actions in set_actions()) {
        run_set_model::<cds_list::CoarseList<u16>>(&actions);
        run_set_model::<cds_list::FineList<u16>>(&actions);
        run_set_model::<cds_list::OptimisticList<u16>>(&actions);
        run_set_model::<cds_list::LazyList<u16>>(&actions);
        run_set_model::<cds_list::HarrisMichaelList<u16>>(&actions);
    }

    #[test]
    fn skiplists_match_btreeset(actions in set_actions()) {
        run_set_model::<cds_skiplist::CoarseSkipList<u16>>(&actions);
        run_set_model::<cds_skiplist::LazySkipList<u16>>(&actions);
        run_set_model::<cds_skiplist::LockFreeSkipList<u16>>(&actions);
    }

    #[test]
    fn trees_match_btreeset(actions in set_actions()) {
        run_set_model::<cds_tree::CoarseBst<u16>>(&actions);
        run_set_model::<cds_tree::FineBst<u16>>(&actions);
        run_set_model::<cds_tree::LockFreeBst<u16>>(&actions);
    }

    #[test]
    fn stacks_match_vec(pushes in proptest::collection::vec(any::<u32>(), 0..200),
                        pops in 0usize..250) {
        fn check<S: ConcurrentStack<u32> + Default>(pushes: &[u32], pops: usize) {
            let s = S::default();
            let mut model = Vec::new();
            for &v in pushes {
                s.push(v);
                model.push(v);
            }
            for _ in 0..pops {
                assert_eq!(s.pop(), model.pop());
            }
            assert_eq!(s.is_empty(), model.is_empty());
        }
        check::<cds_stack::CoarseStack<u32>>(&pushes, pops);
        check::<cds_stack::TreiberStack<u32>>(&pushes, pops);
        check::<cds_stack::HpTreiberStack<u32>>(&pushes, pops);
        check::<cds_stack::EliminationBackoffStack<u32>>(&pushes, pops);
        check::<cds_stack::FcStack<u32>>(&pushes, pops);
    }

    #[test]
    fn queues_match_vecdeque(ops in proptest::collection::vec(any::<Option<u32>>(), 0..200)) {
        // Some(v) = enqueue v; None = dequeue.
        fn check<Q: ConcurrentQueue<u32> + Default>(ops: &[Option<u32>]) {
            let q = Q::default();
            let mut model = VecDeque::new();
            for op in ops {
                match op {
                    Some(v) => {
                        q.enqueue(*v);
                        model.push_back(*v);
                    }
                    None => assert_eq!(q.dequeue(), model.pop_front()),
                }
            }
            assert_eq!(q.is_empty(), model.is_empty());
        }
        check::<cds_queue::CoarseQueue<u32>>(&ops);
        check::<cds_queue::TwoLockQueue<u32>>(&ops);
        check::<cds_queue::MsQueue<u32>>(&ops);
        check::<cds_queue::BoundedQueue<u32>>(&ops);
        check::<cds_queue::FcQueue<u32>>(&ops);
    }

    #[test]
    fn maps_match_hashmap(ops in proptest::collection::vec(
        prop_oneof![
            ((0u16..64), any::<u32>()).prop_map(|(k, v)| (0u8, k, v)),
            (0u16..64).prop_map(|k| (1u8, k, 0)),
            (0u16..64).prop_map(|k| (2u8, k, 0)),
        ],
        0..200,
    )) {
        fn check<M: ConcurrentMap<u16, u32> + Default>(ops: &[(u8, u16, u32)]) {
            let m = M::default();
            let mut model: HashMap<u16, u32> = HashMap::new();
            for (kind, k, v) in ops {
                match kind {
                    0 => {
                        let inserted = if model.contains_key(k) {
                            false
                        } else {
                            model.insert(*k, *v);
                            true
                        };
                        assert_eq!(m.insert(*k, *v), inserted);
                    }
                    1 => assert_eq!(m.remove(k), model.remove(k).is_some()),
                    _ => assert_eq!(m.get(k), model.get(k).copied()),
                }
            }
            assert_eq!(m.len(), model.len());
        }
        check::<cds_map::CoarseMap<u16, u32>>(&ops);
        check::<cds_map::StripedHashMap<u16, u32>>(&ops);
        check::<cds_map::SplitOrderedHashMap<u16, u32>>(&ops);
    }

    #[test]
    fn priority_queues_match_btreeset(ops in proptest::collection::vec(
        prop_oneof![
            (0i64..64).prop_map(Some),
            Just(None),
        ],
        0..200,
    )) {
        fn check<P: ConcurrentPriorityQueue<i64> + Default>(ops: &[Option<i64>]) {
            let p = P::default();
            let mut model = BTreeSet::new();
            for op in ops {
                match op {
                    Some(k) => assert_eq!(p.insert(*k), model.insert(*k)),
                    None => {
                        let want = model.iter().next().copied();
                        if let Some(w) = want {
                            model.remove(&w);
                        }
                        assert_eq!(p.remove_min(), want);
                    }
                }
                assert_eq!(p.len(), model.len());
            }
        }
        check::<cds_prio::CoarseBinaryHeap<i64>>(&ops);
        check::<cds_prio::SkipListPriorityQueue<i64>>(&ops);
    }

    #[test]
    fn seqlock_reads_equal_last_write(writes in proptest::collection::vec(any::<(u64, u64)>(), 1..50)) {
        let lock = cds_sync::SeqLock::new((0u64, 0u64));
        for w in &writes {
            lock.write(*w);
            assert_eq!(lock.read(), *w);
        }
        assert_eq!(lock.read(), *writes.last().unwrap());
    }
}

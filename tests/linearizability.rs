//! Linearizability checking of the concurrent implementations.
//!
//! Each test runs many small randomized concurrent windows (a few threads,
//! a few operations each) against a real structure, records
//! invocation/response timestamps with `cds_lincheck::Recorder`, and
//! verifies with the Wing–Gong search that some legal sequential order
//! explains the observed results.
//!
//! On a single-core host the interleavings are less adversarial than on a
//! multiprocessor, but preemption still produces genuine overlap, and the
//! checker validates real-time order in every window.

use std::sync::Arc;

use cds_core::{
    ConcurrentCounter, ConcurrentMap, ConcurrentPriorityQueue, ConcurrentQueue, ConcurrentSet,
    ConcurrentStack,
};
use cds_lincheck::specs::{
    CounterOp, CounterSpec, DequeOp, DequeRes, DequeSpec, PqOp, PqRes, PqSpec, QueueOp, QueueRes,
    QueueSpec, SetOp, SetSpec, StackOp, StackRes, StackSpec,
};
use cds_lincheck::{check_linearizable, Recorder};

const WINDOWS: usize = 30;
const THREADS: usize = 3;
const OPS_PER_THREAD: usize = 4;

fn xorshift(x: &mut u64) -> u64 {
    *x ^= *x << 13;
    *x ^= *x >> 7;
    *x ^= *x << 17;
    *x
}

fn check_stack<S: ConcurrentStack<u64> + Default + 'static>() {
    for window in 0..WINDOWS {
        let stack = Arc::new(S::default());
        let recorder = Arc::new(Recorder::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let stack = Arc::clone(&stack);
                let recorder = Arc::clone(&recorder);
                std::thread::spawn(move || {
                    let mut rng = (window * THREADS + t + 1) as u64 * 0x9e3779b9;
                    for i in 0..OPS_PER_THREAD {
                        if xorshift(&mut rng).is_multiple_of(2) {
                            let v = (t * OPS_PER_THREAD + i) as u64;
                            recorder.record(StackOp::Push(v), || {
                                stack.push(v);
                                StackRes::Pushed
                            });
                        } else {
                            recorder.record(StackOp::Pop, || StackRes::Popped(stack.pop()));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let history = Arc::try_unwrap(recorder).ok().unwrap().into_history();
        assert!(
            check_linearizable(StackSpec::default(), &history),
            "non-linearizable stack history ({}): {history:?}",
            S::NAME
        );
    }
}

fn check_queue<Q: ConcurrentQueue<u64> + Default + 'static>() {
    for window in 0..WINDOWS {
        let queue = Arc::new(Q::default());
        let recorder = Arc::new(Recorder::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let queue = Arc::clone(&queue);
                let recorder = Arc::clone(&recorder);
                std::thread::spawn(move || {
                    let mut rng = (window * THREADS + t + 7) as u64 * 0x2545f491;
                    for i in 0..OPS_PER_THREAD {
                        if xorshift(&mut rng).is_multiple_of(2) {
                            let v = (t * OPS_PER_THREAD + i) as u64;
                            recorder.record(QueueOp::Enqueue(v), || {
                                queue.enqueue(v);
                                QueueRes::Enqueued
                            });
                        } else {
                            recorder
                                .record(QueueOp::Dequeue, || QueueRes::Dequeued(queue.dequeue()));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let history = Arc::try_unwrap(recorder).ok().unwrap().into_history();
        assert!(
            check_linearizable(QueueSpec::default(), &history),
            "non-linearizable queue history ({}): {history:?}",
            Q::NAME
        );
    }
}

fn check_set<S: ConcurrentSet<u64> + Default + 'static>() {
    for window in 0..WINDOWS {
        let set = Arc::new(S::default());
        let recorder = Arc::new(Recorder::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let set = Arc::clone(&set);
                let recorder = Arc::clone(&recorder);
                std::thread::spawn(move || {
                    let mut rng = (window * THREADS + t + 3) as u64 * 0x517cc1b7;
                    for _ in 0..OPS_PER_THREAD {
                        let k = xorshift(&mut rng) % 3; // few keys => real conflicts
                        match xorshift(&mut rng) % 3 {
                            0 => {
                                recorder.record(SetOp::Insert(k), || set.insert(k));
                            }
                            1 => {
                                recorder.record(SetOp::Remove(k), || set.remove(&k));
                            }
                            _ => {
                                recorder.record(SetOp::Contains(k), || set.contains(&k));
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let history = Arc::try_unwrap(recorder).ok().unwrap().into_history();
        assert!(
            check_linearizable(SetSpec::default(), &history),
            "non-linearizable set history ({}): {history:?}",
            S::NAME
        );
    }
}

fn check_map_as_set<M: ConcurrentMap<u64, u64> + Default + 'static>() {
    // Exercise the map through set-like ops (insert/remove/contains_key),
    // checked against the set spec (values are keys).
    for window in 0..WINDOWS {
        let map = Arc::new(M::default());
        let recorder = Arc::new(Recorder::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let map = Arc::clone(&map);
                let recorder = Arc::clone(&recorder);
                std::thread::spawn(move || {
                    let mut rng = (window * THREADS + t + 11) as u64 * 0x85ebca6b;
                    for _ in 0..OPS_PER_THREAD {
                        let k = xorshift(&mut rng) % 3;
                        match xorshift(&mut rng) % 3 {
                            0 => {
                                recorder.record(SetOp::Insert(k), || map.insert(k, k));
                            }
                            1 => {
                                recorder.record(SetOp::Remove(k), || map.remove(&k));
                            }
                            _ => {
                                recorder.record(SetOp::Contains(k), || map.contains_key(&k));
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let history = Arc::try_unwrap(recorder).ok().unwrap().into_history();
        assert!(
            check_linearizable(SetSpec::default(), &history),
            "non-linearizable map history ({}): {history:?}",
            M::NAME
        );
    }
}

fn check_pq<P: ConcurrentPriorityQueue<u64> + Default + 'static>() {
    for window in 0..WINDOWS {
        let pq = Arc::new(P::default());
        let recorder = Arc::new(Recorder::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let pq = Arc::clone(&pq);
                let recorder = Arc::clone(&recorder);
                std::thread::spawn(move || {
                    let mut rng = (window * THREADS + t + 5) as u64 * 0xc2b2ae35;
                    for _ in 0..OPS_PER_THREAD {
                        if xorshift(&mut rng).is_multiple_of(2) {
                            let k = xorshift(&mut rng) % 8;
                            recorder.record(PqOp::Insert(k), || PqRes::Inserted(pq.insert(k)));
                        } else {
                            recorder.record(PqOp::RemoveMin, || PqRes::Removed(pq.remove_min()));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let history = Arc::try_unwrap(recorder).ok().unwrap().into_history();
        assert!(
            check_linearizable(PqSpec::default(), &history),
            "non-linearizable priority-queue history ({}): {history:?}",
            P::NAME
        );
    }
}

fn check_counter<C: ConcurrentCounter + Default + 'static>() {
    for window in 0..WINDOWS {
        let c = Arc::new(C::default());
        let recorder = Arc::new(Recorder::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let c = Arc::clone(&c);
                let recorder = Arc::clone(&recorder);
                std::thread::spawn(move || {
                    let mut rng = (window * THREADS + t + 13) as u64 * 0x27d4eb2f;
                    for _ in 0..OPS_PER_THREAD {
                        if xorshift(&mut rng).is_multiple_of(2) {
                            let d = (xorshift(&mut rng) % 5) as i64;
                            recorder.record(CounterOp::Add(d), || {
                                c.add(d);
                                0
                            });
                        } else {
                            recorder.record(CounterOp::Get, || c.get());
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let history = Arc::try_unwrap(recorder).ok().unwrap().into_history();
        assert!(
            check_linearizable(CounterSpec::default(), &history),
            "non-linearizable counter history ({}): {history:?}",
            C::NAME
        );
    }
}

#[test]
fn coarse_priority_queue_is_linearizable() {
    // Only the lock-based heap claims linearizable remove_min; the
    // Lotan–Shavit queue is quiescently consistent by design (see
    // cds-prio docs) and gets the insert-only treatment below.
    check_pq::<cds_prio::CoarseBinaryHeap<u64>>();
}

#[test]
fn skiplist_pq_inserts_are_linearizable_and_drain_is_sorted() {
    // `remove_min` on the Lotan–Shavit queue is quiescently consistent, so
    // a mixed window would legitimately fail the checker. Its *inserts* are
    // linearizable though, and after quiescence the drain must come out in
    // ascending order with nothing lost.
    use cds_prio::SkipListPriorityQueue;
    for window in 0..WINDOWS {
        let pq = Arc::new(SkipListPriorityQueue::<u64>::default());
        let recorder = Arc::new(Recorder::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let pq = Arc::clone(&pq);
                let recorder = Arc::clone(&recorder);
                std::thread::spawn(move || {
                    let mut rng = (window * THREADS + t + 19) as u64 * 0xc2b2ae35;
                    for _ in 0..OPS_PER_THREAD {
                        let k = xorshift(&mut rng) % 8; // collisions on purpose
                        recorder.record(PqOp::Insert(k), || PqRes::Inserted(pq.insert(k)));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let history = Arc::try_unwrap(recorder).ok().unwrap().into_history();
        assert!(
            check_linearizable(PqSpec::default(), &history),
            "non-linearizable skiplist-pq insert history: {history:?}"
        );
        let inserted = history
            .iter()
            .filter(|op| op.result == PqRes::Inserted(true))
            .count();
        let mut drained = Vec::new();
        while let Some(v) = pq.remove_min() {
            drained.push(v);
        }
        assert_eq!(drained.len(), inserted, "elements lost or duplicated");
        assert!(drained.is_sorted(), "drain out of order: {drained:?}");
    }
}

#[test]
fn linearizable_counters_check_out() {
    // Sharded/combining counters have quiescently-consistent `get` and get
    // the weaker treatment in `quiescent_counters_converge` below.
    check_counter::<cds_counter::LockCounter>();
    check_counter::<cds_counter::AtomicCounter>();
    check_counter::<cds_counter::FcCounter>();
}

/// Quiescently consistent counters: a concurrent `get` may miss in-flight
/// increments, so the full counter check would legitimately fail. Instead,
/// record a concurrent add-only window plus one `Get` issued strictly
/// *after* every add has returned; real-time order then forces the checker
/// to demand the exact total.
fn check_quiescent_counter<C: ConcurrentCounter + Default + 'static>() {
    for window in 0..WINDOWS {
        let c = Arc::new(C::default());
        let recorder = Arc::new(Recorder::new());
        let handles: Vec<_> = (0..THREADS)
            .map(|t| {
                let c = Arc::clone(&c);
                let recorder = Arc::clone(&recorder);
                std::thread::spawn(move || {
                    let mut rng = (window * THREADS + t + 17) as u64 * 0x9e3779b9;
                    for _ in 0..OPS_PER_THREAD {
                        let d = (xorshift(&mut rng) % 5) as i64;
                        recorder.record(CounterOp::Add(d), || {
                            c.add(d);
                            0
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        recorder.record(CounterOp::Get, || c.get());
        let history = Arc::try_unwrap(recorder).ok().unwrap().into_history();
        assert!(
            check_linearizable(CounterSpec::default(), &history),
            "quiescent counter missed adds ({}): {history:?}",
            C::NAME
        );
    }
}

#[test]
fn quiescent_counters_converge() {
    check_quiescent_counter::<cds_counter::ShardedCounter>();
    check_quiescent_counter::<cds_counter::CombiningTreeCounter>();
}

#[test]
fn stacks_are_linearizable() {
    check_stack::<cds_stack::CoarseStack<u64>>();
    check_stack::<cds_stack::TreiberStack<u64>>();
    check_stack::<cds_stack::TreiberStack<u64, cds_reclaim::Hazard>>();
    check_stack::<cds_stack::TreiberStack<u64, cds_reclaim::DebugReclaim>>();
    check_stack::<cds_stack::EliminationBackoffStack<u64>>();
    check_stack::<cds_stack::FcStack<u64>>();
}

#[test]
fn queues_are_linearizable() {
    check_queue::<cds_queue::CoarseQueue<u64>>();
    check_queue::<cds_queue::TwoLockQueue<u64>>();
    check_queue::<cds_queue::MsQueue<u64>>();
    check_queue::<cds_queue::FcQueue<u64>>();
    // Default capacity (1024) far exceeds the window, so enqueue never
    // blocks and FIFO semantics are fully exercised.
    check_queue::<cds_queue::BoundedQueue<u64>>();
}

#[test]
fn spsc_ring_is_linearizable() {
    // One producer, one consumer — the only legal client pattern.
    for window in 0..WINDOWS {
        let (producer, consumer) = cds_queue::spsc_ring_buffer::<u64>(64);
        let recorder = Recorder::new();
        std::thread::scope(|s| {
            let recorder = &recorder;
            s.spawn(move || {
                for i in 0..2 * OPS_PER_THREAD {
                    let v = (window * 100 + i) as u64;
                    recorder.record(QueueOp::Enqueue(v), || {
                        // Capacity exceeds the window: try_push cannot fail.
                        producer.try_push(v).expect("ring unexpectedly full");
                        QueueRes::Enqueued
                    });
                }
            });
            s.spawn(move || {
                for _ in 0..2 * OPS_PER_THREAD {
                    recorder.record(QueueOp::Dequeue, || QueueRes::Dequeued(consumer.try_pop()));
                }
            });
        });
        let history = recorder.into_history();
        assert!(
            check_linearizable(QueueSpec::default(), &history),
            "non-linearizable SPSC history: {history:?}"
        );
    }
}

#[test]
fn chase_lev_deque_is_linearizable() {
    // One owner (pushes and pops the bottom), two thieves stealing the top,
    // checked against the sequential work-stealing deque spec. `Retry` is
    // looped inside the recorded closure: the operation's span covers the
    // retries and its result is the first decisive outcome.
    for window in 0..WINDOWS {
        let (worker, stealer) = cds_queue::ChaseLevDeque::<u64>::new();
        let recorder = Recorder::new();
        std::thread::scope(|s| {
            let recorder = &recorder;
            let stealer2 = stealer.clone();
            s.spawn(move || {
                let mut rng = (window + 1) as u64 * 0x9e3779b9;
                for i in 0..2 * OPS_PER_THREAD {
                    if xorshift(&mut rng).is_multiple_of(2) {
                        let v = (window * 100 + i) as u64;
                        recorder.record(DequeOp::PushBottom(v), || {
                            worker.push(v);
                            DequeRes::Pushed
                        });
                    } else {
                        recorder.record(DequeOp::PopBottom, || DequeRes::Popped(worker.pop()));
                    }
                }
            });
            for stealer in [stealer, stealer2] {
                s.spawn(move || {
                    for _ in 0..OPS_PER_THREAD {
                        recorder.record(DequeOp::Steal, || loop {
                            match stealer.steal() {
                                cds_queue::Steal::Success(v) => {
                                    return DequeRes::Stolen(Some(v));
                                }
                                cds_queue::Steal::Empty => return DequeRes::Stolen(None),
                                cds_queue::Steal::Retry => continue,
                            }
                        });
                    }
                });
            }
        });
        let history = recorder.into_history();
        assert!(
            check_linearizable(DequeSpec::default(), &history),
            "non-linearizable Chase-Lev history: {history:?}"
        );
    }
}

#[test]
fn list_sets_are_linearizable() {
    check_set::<cds_list::CoarseList<u64>>();
    check_set::<cds_list::FineList<u64>>();
    check_set::<cds_list::OptimisticList<u64>>();
    check_set::<cds_list::LazyList<u64>>();
    check_set::<cds_list::HarrisMichaelList<u64>>();
}

#[test]
fn skiplist_and_tree_sets_are_linearizable() {
    check_set::<cds_skiplist::CoarseSkipList<u64>>();
    check_set::<cds_skiplist::LazySkipList<u64>>();
    check_set::<cds_skiplist::LockFreeSkipList<u64>>();
    check_set::<cds_tree::CoarseBst<u64>>();
    check_set::<cds_tree::FineBst<u64>>();
    check_set::<cds_tree::LockFreeBst<u64>>();
}

#[test]
fn maps_are_linearizable() {
    check_map_as_set::<cds_map::CoarseMap<u64, u64>>();
    check_map_as_set::<cds_map::StripedHashMap<u64, u64>>();
    check_map_as_set::<cds_map::SplitOrderedHashMap<u64, u64>>();
    check_set::<cds_map::BucketedHashSet<u64>>();
}

//! Integration scenarios spanning multiple crates: structures composed
//! into realistic multi-threaded pipelines, with end-to-end invariants.

use cds_atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use cds_core::{ConcurrentCounter, ConcurrentMap, ConcurrentQueue, ConcurrentSet, ConcurrentStack};
use cds_counter::ShardedCounter;
use cds_map::StripedHashMap;
use cds_queue::{ChaseLevDeque, MsQueue, Steal};
use cds_skiplist::LockFreeSkipList;
use cds_stack::TreiberStack;

/// Producer → queue → worker → map pipeline: every produced job must be
/// processed exactly once and its result recorded.
#[test]
fn queue_feeds_map_pipeline() {
    let jobs: Arc<MsQueue<u64>> = Arc::new(MsQueue::new());
    let results: Arc<StripedHashMap<u64, u64>> = Arc::new(StripedHashMap::new());
    let done = Arc::new(AtomicUsize::new(0));
    const JOBS: u64 = 2_000;

    let producer = {
        let jobs = Arc::clone(&jobs);
        std::thread::spawn(move || {
            for j in 0..JOBS {
                jobs.enqueue(j);
            }
        })
    };
    let workers: Vec<_> = (0..3)
        .map(|_| {
            let jobs = Arc::clone(&jobs);
            let results = Arc::clone(&results);
            let done = Arc::clone(&done);
            std::thread::spawn(move || loop {
                match jobs.dequeue() {
                    Some(j) => {
                        assert!(results.insert(j, j * j), "job {j} processed twice");
                        done.fetch_add(1, Ordering::SeqCst);
                    }
                    None => {
                        if done.load(Ordering::SeqCst) as u64 == JOBS {
                            return;
                        }
                        std::thread::yield_now();
                    }
                }
            })
        })
        .collect();

    producer.join().unwrap();
    for w in workers {
        w.join().unwrap();
    }
    assert_eq!(results.len() as u64, JOBS);
    for j in 0..JOBS {
        assert_eq!(results.get(&j), Some(j * j));
    }
}

/// Work-stealing: an owner floods its deque, thieves drain it, everything
/// lands in a shared lock-free set exactly once.
#[test]
fn work_stealing_into_lock_free_set() {
    let (worker, stealer) = ChaseLevDeque::new();
    let seen: Arc<LockFreeSkipList<u64>> = Arc::new(LockFreeSkipList::new());
    const TASKS: u64 = 5_000;

    let thieves: Vec<_> = (0..2)
        .map(|_| {
            let stealer = stealer.clone();
            let seen = Arc::clone(&seen);
            std::thread::spawn(move || {
                let mut empty_streak = 0;
                loop {
                    match stealer.steal() {
                        Steal::Success(t) => {
                            assert!(seen.insert(t), "task {t} executed twice");
                            empty_streak = 0;
                        }
                        Steal::Retry => {}
                        Steal::Empty => {
                            empty_streak += 1;
                            if empty_streak > 1_000 {
                                return;
                            }
                            std::thread::yield_now();
                        }
                    }
                }
            })
        })
        .collect();

    for t in 0..TASKS {
        worker.push(t);
    }
    // Owner also works from its own deque.
    while let Some(t) = worker.pop() {
        assert!(seen.insert(t), "task {t} executed twice");
    }
    for t in thieves {
        t.join().unwrap();
    }
    assert_eq!(seen.len() as u64, TASKS);
}

/// A free-list allocator pattern: threads check tokens in and out of a
/// shared Treiber stack; the sharded counter audits the flow.
#[test]
fn stack_as_free_list_with_counter_audit() {
    let pool: Arc<TreiberStack<usize>> = Arc::new(TreiberStack::new());
    let checkouts = Arc::new(ShardedCounter::new());
    for token in 0..64 {
        pool.push(token);
    }
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let pool = Arc::clone(&pool);
            let checkouts = Arc::clone(&checkouts);
            std::thread::spawn(move || {
                for _ in 0..1_000 {
                    if let Some(token) = pool.pop() {
                        checkouts.increment();
                        // "Use" the token, then return it.
                        pool.push(token);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Every token returned: drain exactly 64 distinct tokens.
    let mut tokens = Vec::new();
    while let Some(t) = pool.pop() {
        tokens.push(t);
    }
    tokens.sort_unstable();
    assert_eq!(tokens, (0..64).collect::<Vec<_>>());
    assert!(checkouts.get() > 0);
}

/// The facade crate re-exports every subcrate.
#[test]
fn facade_reexports_compile() {
    let stack: cds::stack::TreiberStack<u8> = cds::stack::TreiberStack::new();
    use cds::core::ConcurrentStack as _;
    stack.push(1);
    assert_eq!(stack.pop(), Some(1));

    let lock = cds::sync::SeqLock::new(5u32);
    assert_eq!(lock.read(), 5);

    let counter = cds::counter::AtomicCounter::new();
    use cds::core::ConcurrentCounter as _;
    counter.increment();
    assert_eq!(counter.get(), 1);
}

/// `FromIterator` round trips (API guideline C-COLLECT).
#[test]
fn collect_round_trips() {
    use cds_core::ConcurrentStack as _;
    let stack: cds_stack::TreiberStack<u32> = (0..10).collect();
    assert_eq!(stack.pop(), Some(9), "last pushed on top");

    use cds_core::ConcurrentQueue as _;
    let queue: cds_queue::MsQueue<u32> = (0..10).collect();
    assert_eq!(queue.dequeue(), Some(0), "first in, first out");

    let set: cds_list::HarrisMichaelList<u32> = [3, 1, 3, 2].into_iter().collect();
    assert_eq!(set.len(), 3, "duplicates dropped");

    let skips: cds_skiplist::LockFreeSkipList<u32> = (0..100).collect();
    assert_eq!(skips.min(), Some(0));

    let map: cds_map::StripedHashMap<u32, &str> =
        [(1, "first"), (1, "second")].into_iter().collect();
    assert_eq!(map.get(&1), Some("first"), "first insert wins");

    let mut lazy: cds_list::LazyList<u32> = (0..5).collect();
    lazy.extend(5..10);
    assert_eq!(lazy.len(), 10);
}

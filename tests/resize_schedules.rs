//! Scheduled-stress and property coverage for hash-map **resize**: the
//! interleaving surface none of the earlier harness work pointed at.
//!
//! The maps under test get deliberately tiny geometries (one shard, one
//! or two buckets) so the load-factor trigger fires well inside a 64-op
//! lincheck window — every pinned seed below drives inserts, lookups,
//! removes, `contains_key`, and `len` *through* an in-flight cooperative
//! migration ([`cds_map::ResizingMap`]) or an all-stripe table doubling
//! ([`cds_map::StripedHashMap`]). These tests build with the `stress`
//! feature live, so every `yield_point` in the migration loops — and
//! every lock acquisition and `Backoff` step — is a real PCT preemption
//! point; failures print a round seed that `CDS_STRESS_SEED=<seed>` (or
//! [`cds_lincheck::stress::replay`]) reproduces deterministically.
//!
//! Also here: the quiescent no-loss / no-duplication / shard-balance
//! properties. The ddmin-shrunk regression for the migration race the
//! protocol is designed against (releasing the source-bucket lock while
//! entries are "in neither table") lives in its own binary,
//! `tests/resize_replay.rs`, because its seed-replay assertion is
//! schedule-sensitive (the `tests/replay.rs` pattern).

use cds_atomic::{AtomicUsize, Ordering};
use std::collections::BTreeMap;
use std::hash::{BuildHasher, Hasher};

use cds_core::{ConcurrentMap, ConcurrentSet};
use cds_lincheck::prop::{forall_vec, Config, Prng};
use cds_lincheck::specs::{MapOp, MapRes, MapSpec, SetOp, SetSpec};
use cds_lincheck::stress::{stress, StressOptions};
use cds_map::{BucketedHashSet, ResizingMap, StripedHashMap};
use cds_reclaim::{DebugReclaim, Ebr, Hazard, Leak, Reclaimer};

/// Per-test pinned-seed options, unless `CDS_STRESS_SEED` overrides (the
/// replay knob, same convention as `tests/schedules.rs`). Sixteen ops per
/// worker — three workers fill a 48-op window, enough inserts over a
/// one-bucket shard to force at least one doubling per round.
fn opts(seed: u64) -> StressOptions {
    let defaults = StressOptions::default(); // seed from env when set
    StressOptions {
        seed: if std::env::var_os("CDS_STRESS_SEED").is_some() {
            defaults.seed
        } else {
            seed
        },
        ops_per_thread: 16,
        rounds: 8,
        ..defaults
    }
}

/// Insert-heavy map workload over a small key range, including the two
/// operations that only make sense across a resize boundary:
/// `contains_key` (must see through a half-migrated bucket) and `len`
/// (the map-wide counter must be linearizable mid-migration).
fn gen_resize_map(rng: &mut cds_core::stress::SplitMix64, _t: usize) -> MapOp<u64, u64> {
    let k = rng.below(12);
    match rng.below(8) {
        0..=3 => MapOp::Insert(k, rng.below(100)),
        4 => MapOp::Remove(k),
        5 => MapOp::Get(k),
        6 => MapOp::ContainsKey(k),
        _ => MapOp::Len,
    }
}

fn exec_map<M: ConcurrentMap<u64, u64>>(m: &M, op: &MapOp<u64, u64>) -> MapRes<u64> {
    match op {
        MapOp::Insert(k, v) => MapRes::Changed(m.insert(*k, *v)),
        MapOp::Remove(k) => MapRes::Changed(m.remove(k)),
        MapOp::Get(k) => MapRes::Got(m.get(k)),
        MapOp::ContainsKey(k) => MapRes::Has(m.contains_key(k)),
        MapOp::Len => MapRes::Len(m.len()),
    }
}

/// Highest doublings count any round's map reached, recorded at teardown —
/// proof the seeds actually interleaved operations with live migrations
/// rather than running before or after them.
static MAX_DOUBLINGS: AtomicUsize = AtomicUsize::new(0);

struct Tracked<R: Reclaimer>(ResizingMap<u64, u64, std::hash::RandomState, R>);

impl<R: Reclaimer> Drop for Tracked<R> {
    fn drop(&mut self) {
        MAX_DOUBLINGS.fetch_max(self.0.doublings(), Ordering::Relaxed);
    }
}

fn stress_resizing_on<R: Reclaimer>(seed: u64) {
    stress(
        MapSpec::<u64, u64>::default(),
        &opts(seed),
        || Tracked::<R>(ResizingMap::with_config(1, 1)),
        gen_resize_map,
        |m, op| exec_map(&m.0, op),
    )
    .unwrap_or_else(|f| panic!("resizing map under {} not linearizable: {f:?}", R::NAME));
}

/// The tentpole acceptance test: insert/lookup/remove/`contains_key`/`len`
/// racing in-flight migrations must linearize, and the rounds must have
/// actually resized mid-window.
#[test]
fn scheduled_resizing_map_is_linearizable_across_migration() {
    stress_resizing_on::<Ebr>(0x4e512e0);
    assert!(
        MAX_DOUBLINGS.load(Ordering::Relaxed) >= 1,
        "no round ever resized: the seeds never reached an in-flight migration"
    );
}

/// The lock-based coverage gap: the striped map's all-stripe resize and
/// the bucketed set at bucket-starved capacity, under the scheduled
/// harness with pinned seeds (their default geometries never resize
/// inside a 64-op window).
#[test]
fn scheduled_striped_resize_is_linearizable() {
    stress(
        MapSpec::<u64, u64>::default(),
        &opts(0x4e512e1),
        || StripedHashMap::<u64, u64>::with_config(2, 2),
        gen_resize_map,
        exec_map,
    )
    .unwrap_or_else(|f| panic!("striped map across resize not linearizable: {f:?}"));
}

#[test]
fn scheduled_bucket_starved_bucketed_set_is_linearizable() {
    stress(
        SetSpec::<u64>::default(),
        &opts(0x4e512e2),
        || BucketedHashSet::<u64>::with_buckets(2),
        |rng, _t| {
            let k = rng.below(12);
            match rng.below(3) {
                0 => SetOp::Insert(k),
                1 => SetOp::Remove(k),
                _ => SetOp::Contains(k),
            }
        },
        |s, op| match op {
            SetOp::Insert(k) => s.insert(*k),
            SetOp::Remove(k) => s.remove(k),
            SetOp::Contains(k) => s.contains(k),
        },
    )
    .unwrap_or_else(|f| panic!("bucketed set not linearizable: {f:?}"));
}

// ---------------------------------------------------------------------------
// Quiescent properties: no loss, no duplication, balanced shards
// ---------------------------------------------------------------------------

/// Deterministic hasher (SplitMix64 finalizer) so the shard-balance
/// assertions below are exact replays, not `RandomState` lottery tickets.
#[derive(Clone, Default)]
struct FixedHasher(u64);

impl Hasher for FixedHasher {
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
        }
    }
    fn finish(&self) -> u64 {
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

#[derive(Clone, Default)]
struct FixedState;

impl BuildHasher for FixedState {
    type Hasher = FixedHasher;
    fn build_hasher(&self) -> FixedHasher {
        FixedHasher::default()
    }
}

/// Property: against a forced multi-doubling resize, the map agrees with
/// a `BTreeMap` model op for op, no key is lost or duplicated in the
/// final physical state, and `len` equals the sum of the shard lens at
/// quiescence. Failures ddmin-shrink to a minimal script and print a
/// `CDS_PROP_SEED` reproducer.
#[test]
fn no_key_lost_or_duplicated_across_forced_resize() {
    #[derive(Debug, Clone, Copy)]
    enum Op {
        Insert(u64, u64),
        Remove(u64),
    }
    let config = Config {
        cases: 48,
        seed: 0x4e512e4, // pinned for reproducibility
        max_len: 96,     // enough inserts for two doublings of a 1-bucket shard
    };
    let gen = |rng: &mut Prng| {
        if rng.below(4) == 0 {
            Op::Remove(rng.below(24))
        } else {
            Op::Insert(rng.below(24), rng.below(100))
        }
    };
    forall_vec(&config, gen, |script: &[Op]| {
        let map: ResizingMap<u64, u64, FixedState> =
            ResizingMap::with_config_and_hasher(2, 1, FixedState);
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        for op in script {
            match *op {
                Op::Insert(k, v) => {
                    // insert-if-absent on both sides
                    let fresh = !model.contains_key(&k);
                    if fresh {
                        model.insert(k, v);
                    }
                    assert_eq!(map.insert(k, v), fresh, "insert({k}) disagreed with model");
                }
                Op::Remove(k) => {
                    assert_eq!(
                        map.remove(&k),
                        model.remove(&k).is_some(),
                        "remove({k}) disagreed with model"
                    );
                }
            }
        }
        // Quiescent invariants: counters agree and the physical state has
        // exactly the model's keys — none lost, none duplicated.
        assert_eq!(map.len(), model.len(), "len diverged from model");
        assert_eq!(
            map.len(),
            map.shard_lens().iter().sum::<usize>(),
            "len != sum of shard lens at quiescence"
        );
        let mut keys = map.snapshot_keys();
        keys.sort_unstable();
        assert!(
            keys.windows(2).all(|w| w[0] < w[1]),
            "duplicate key in physical state: {keys:?}"
        );
        assert_eq!(
            keys,
            model.keys().copied().collect::<Vec<_>>(),
            "physical keys diverged from model"
        );
    });
}

/// Property: the fixed hasher spreads sequential keys across shards well
/// enough that no shard holds more than 4× its fair share (and none
/// starves) once the map has grown through several doublings.
#[test]
fn shards_stay_balanced_under_uniform_keys() {
    const N: usize = 4096;
    let map: ResizingMap<u64, u64, FixedState> =
        ResizingMap::with_config_and_hasher(8, 2, FixedState);
    for i in 0..N as u64 {
        assert!(map.insert(i, i));
    }
    assert!(map.doublings() >= 3, "expected ≥3 doublings during fill");
    let lens = map.shard_lens();
    assert_eq!(lens.iter().sum::<usize>(), N);
    let fair = N / lens.len();
    for (i, &len) in lens.iter().enumerate() {
        assert!(
            len <= fair * 4 && len >= fair / 4,
            "shard {i} unbalanced: {len} of fair {fair} (all: {lens:?})"
        );
    }
}

/// The resize matrix cell the CI job gates on: the cooperative migration
/// linearizes under all four reclamation backends, each cell with its own
/// pinned seed (same convention as `tests/reclaim_matrix.rs`).
#[test]
fn scheduled_resizing_map_under_every_backend() {
    fn cell_seed<R: Reclaimer>(base: u64) -> u64 {
        let tag = R::NAME
            .bytes()
            .fold(0u64, |h, b| h.wrapping_mul(31).wrapping_add(b as u64));
        base ^ (tag << 16)
    }
    stress_resizing_on::<Ebr>(cell_seed::<Ebr>(0x4e512e5));
    stress_resizing_on::<Hazard>(cell_seed::<Hazard>(0x4e512e5));
    stress_resizing_on::<Leak>(cell_seed::<Leak>(0x4e512e5));
    stress_resizing_on::<DebugReclaim>(cell_seed::<DebugReclaim>(0x4e512e5));
}

//! Deterministic scheduled stress runs across every structure family.
//!
//! These tests build with the `stress` feature live (the root crate
//! dev-depends on itself with `features = ["stress"]`), so every
//! `cds_core::stress::yield_point()` planted in the structures — and every
//! lock acquisition through the `parking_lot` shim — is a real PCT-style
//! preemption point. Each test runs seeded rounds via
//! `cds_lincheck::stress::stress`; a failure prints a round seed that
//! [`cds_lincheck::stress::replay`] reproduces deterministically.

use std::time::{Duration, Instant};

use cds_core::{
    ConcurrentCounter, ConcurrentMap, ConcurrentPriorityQueue, ConcurrentQueue, ConcurrentSet,
    ConcurrentStack,
};
use cds_lincheck::faults::{crash_worker, with_contention_storm, StormOptions};
use cds_lincheck::specs::{
    CounterOp, CounterSpec, MapOp, MapRes, MapSpec, PqOp, PqRes, PqSpec, QueueOp, QueueRes,
    QueueSpec, SetOp, SetSpec, StackOp, StackRes, StackSpec,
};
use cds_lincheck::stress::{stress, StressOptions};
use cds_lincheck::{check_linearizable, Recorder};

/// Per-family fixed-seed options, unless `CDS_STRESS_SEED` is set — then
/// that root seed wins for every family (the replay knob: a failure prints
/// the root seed, and re-running the suite with it set reproduces the run;
/// CI also uses it to rotate in fresh schedules).
fn opts(seed: u64) -> StressOptions {
    let defaults = StressOptions::default(); // seed from env when set
    StressOptions {
        seed: if std::env::var_os("CDS_STRESS_SEED").is_some() {
            defaults.seed
        } else {
            seed
        },
        ..defaults
    }
}

fn gen_stack(rng: &mut cds_core::stress::SplitMix64, t: usize) -> StackOp<u64> {
    if rng.below(2) == 0 {
        StackOp::Push((t as u64) << 8 | rng.below(16))
    } else {
        StackOp::Pop
    }
}

fn stress_stack<S: ConcurrentStack<u64> + Default + Sync>(seed: u64) {
    stress(
        StackSpec::<u64>::default(),
        &opts(seed),
        S::default,
        gen_stack,
        |s, op| match op {
            StackOp::Push(v) => {
                s.push(*v);
                StackRes::Pushed
            }
            StackOp::Pop => StackRes::Popped(s.pop()),
        },
    )
    .unwrap_or_else(|f| panic!("{} stack not linearizable: {f:?}", S::NAME));
}

fn gen_queue(rng: &mut cds_core::stress::SplitMix64, t: usize) -> QueueOp<u64> {
    if rng.below(2) == 0 {
        QueueOp::Enqueue((t as u64) << 8 | rng.below(16))
    } else {
        QueueOp::Dequeue
    }
}

fn stress_queue<Q: ConcurrentQueue<u64> + Default + Sync>(seed: u64) {
    stress(
        QueueSpec::<u64>::default(),
        &opts(seed),
        Q::default,
        gen_queue,
        |q, op| match op {
            QueueOp::Enqueue(v) => {
                q.enqueue(*v);
                QueueRes::Enqueued
            }
            QueueOp::Dequeue => QueueRes::Dequeued(q.dequeue()),
        },
    )
    .unwrap_or_else(|f| panic!("{} queue not linearizable: {f:?}", Q::NAME));
}

fn gen_set(rng: &mut cds_core::stress::SplitMix64, _t: usize) -> SetOp<u64> {
    let k = rng.below(3); // few keys => real conflicts
    match rng.below(3) {
        0 => SetOp::Insert(k),
        1 => SetOp::Remove(k),
        _ => SetOp::Contains(k),
    }
}

fn stress_set<S: ConcurrentSet<u64> + Default + Sync>(seed: u64) {
    stress(
        SetSpec::<u64>::default(),
        &opts(seed),
        S::default,
        gen_set,
        |s, op| match op {
            SetOp::Insert(k) => s.insert(*k),
            SetOp::Remove(k) => s.remove(k),
            SetOp::Contains(k) => s.contains(k),
        },
    )
    .unwrap_or_else(|f| panic!("{} set not linearizable: {f:?}", S::NAME));
}

#[test]
fn scheduled_stacks_are_linearizable() {
    stress_stack::<cds_stack::CoarseStack<u64>>(0x57ac0);
    stress_stack::<cds_stack::TreiberStack<u64>>(0x57ac1);
    stress_stack::<cds_stack::TreiberStack<u64, cds_reclaim::Hazard>>(0x57ac2);
    stress_stack::<cds_stack::EliminationBackoffStack<u64>>(0x57ac3);
    stress_stack::<cds_stack::FcStack<u64>>(0x57ac4);
}

#[test]
fn scheduled_queues_are_linearizable() {
    stress_queue::<cds_queue::CoarseQueue<u64>>(0x90e0);
    stress_queue::<cds_queue::TwoLockQueue<u64>>(0x90e1);
    stress_queue::<cds_queue::MsQueue<u64>>(0x90e2);
    stress_queue::<cds_queue::BoundedQueue<u64>>(0x90e3);
    stress_queue::<cds_queue::FcQueue<u64>>(0x90e4);
}

#[test]
fn scheduled_lists_are_linearizable() {
    stress_set::<cds_list::CoarseList<u64>>(0x115e0);
    stress_set::<cds_list::FineList<u64>>(0x115e1);
    stress_set::<cds_list::OptimisticList<u64>>(0x115e2);
    stress_set::<cds_list::LazyList<u64>>(0x115e3);
    stress_set::<cds_list::HarrisMichaelList<u64>>(0x115e4);
}

#[test]
fn scheduled_skiplists_and_trees_are_linearizable() {
    stress_set::<cds_skiplist::CoarseSkipList<u64>>(0x5c1f0);
    stress_set::<cds_skiplist::LazySkipList<u64>>(0x5c1f1);
    stress_set::<cds_skiplist::LockFreeSkipList<u64>>(0x5c1f2);
    stress_set::<cds_tree::CoarseBst<u64>>(0x73ee0);
    stress_set::<cds_tree::FineBst<u64>>(0x73ee1);
    stress_set::<cds_tree::LockFreeBst<u64>>(0x73ee2);
}

#[test]
fn scheduled_maps_are_linearizable() {
    fn stress_map<M: ConcurrentMap<u64, u64> + Default + Sync>(seed: u64) {
        stress(
            MapSpec::<u64, u64>::default(),
            &opts(seed),
            M::default,
            |rng, _t| {
                let k = rng.below(3);
                match rng.below(3) {
                    0 => MapOp::Insert(k, rng.below(100)),
                    1 => MapOp::Remove(k),
                    _ => MapOp::Get(k),
                }
            },
            |m, op| match op {
                MapOp::Insert(k, v) => MapRes::Changed(m.insert(*k, *v)),
                MapOp::Remove(k) => MapRes::Changed(m.remove(k)),
                MapOp::Get(k) => MapRes::Got(m.get(k)),
                // Not generated here (the split-ordered map's len is only
                // quiescently consistent); wired for exhaustiveness.
                MapOp::ContainsKey(k) => MapRes::Has(m.contains_key(k)),
                MapOp::Len => MapRes::Len(m.len()),
            },
        )
        .unwrap_or_else(|f| panic!("{} map not linearizable: {f:?}", M::NAME));
    }
    stress_map::<cds_map::CoarseMap<u64, u64>>(0x3a70);
    stress_map::<cds_map::StripedHashMap<u64, u64>>(0x3a71);
    stress_map::<cds_map::SplitOrderedHashMap<u64, u64>>(0x3a72);
    stress_set::<cds_map::BucketedHashSet<u64>>(0x3a73);
}

#[test]
fn scheduled_priority_queue_and_counters_are_linearizable() {
    stress(
        PqSpec::<u64>::default(),
        &opts(0x60e0),
        cds_prio::CoarseBinaryHeap::<u64>::default,
        |rng, _t| {
            if rng.below(2) == 0 {
                PqOp::Insert(rng.below(8))
            } else {
                PqOp::RemoveMin
            }
        },
        |p, op| match op {
            PqOp::Insert(k) => PqRes::Inserted(p.insert(*k)),
            PqOp::RemoveMin => PqRes::Removed(p.remove_min()),
        },
    )
    .unwrap_or_else(|f| panic!("coarse heap not linearizable: {f:?}"));

    fn stress_counter<C: ConcurrentCounter + Default + Sync>(seed: u64) {
        stress(
            CounterSpec::default(),
            &opts(seed),
            C::default,
            |rng, _t| {
                if rng.below(2) == 0 {
                    CounterOp::Add(1 + rng.below(4) as i64)
                } else {
                    CounterOp::Get
                }
            },
            |c, op| match op {
                CounterOp::Add(d) => {
                    c.add(*d);
                    0
                }
                CounterOp::Get => c.get(),
            },
        )
        .unwrap_or_else(|f| panic!("{} counter not linearizable: {f:?}", C::NAME));
    }
    stress_counter::<cds_counter::LockCounter>(0xc0e0);
    stress_counter::<cds_counter::AtomicCounter>(0xc0e1);
    stress_counter::<cds_counter::FcCounter>(0xc0e2);
}

fn gen_counter(rng: &mut cds_core::stress::SplitMix64, _t: usize) -> CounterOp {
    if rng.below(2) == 0 {
        CounterOp::Add(1 + rng.below(4) as i64)
    } else {
        CounterOp::Get
    }
}

/// Lock-primitive-guarded counters run against the same `CounterSpec`: a
/// `SeqLock<i64>` (writers serialize on the sequence word, readers retry
/// optimistically) and an `RwSpinLock<i64>`. A torn, stale, or
/// mid-write read would surface as a non-linearizable `Get`; this is the
/// schedule-level complement of the primitives' own unit tests.
#[test]
fn scheduled_lock_guarded_counters_are_linearizable() {
    stress(
        CounterSpec::default(),
        &opts(0x5e9c0),
        || cds_sync::SeqLock::new(0i64),
        gen_counter,
        |c, op| match op {
            CounterOp::Add(d) => {
                c.update(|v| *v += *d);
                0
            }
            CounterOp::Get => c.read(),
        },
    )
    .unwrap_or_else(|f| panic!("SeqLock-guarded counter not linearizable: {f:?}"));

    stress(
        CounterSpec::default(),
        &opts(0x5e9c1),
        || cds_sync::RwSpinLock::new(0i64),
        gen_counter,
        |c, op| match op {
            CounterOp::Add(d) => {
                *c.write() += *d;
                0
            }
            CounterOp::Get => *c.read(),
        },
    )
    .unwrap_or_else(|f| panic!("RwSpinLock-guarded counter not linearizable: {f:?}"));
}

/// Every mutual-exclusion lock in `cds-sync`, exercised as a
/// `Lock<L, i64>`-guarded counter under seeded PCT schedules. This is the
/// schedule-level spec the spin-loop audit (PR 6) demands for each lock:
/// all five wait loops pass a stress yield point every iteration, so these
/// schedules genuinely preempt threads *inside* the acquisition protocols
/// (mid-queue in CLH/MCS, between ticket grab and serve, between the TTAS
/// read and its CAS) rather than only between operations.
#[test]
fn scheduled_spin_lock_guarded_counters_are_linearizable() {
    fn stress_lock<L: cds_sync::RawLock>(seed: u64) {
        stress(
            CounterSpec::default(),
            &opts(seed),
            cds_sync::Lock::<L, i64>::default,
            gen_counter,
            |c, op| match op {
                CounterOp::Add(d) => {
                    *c.lock() += *d;
                    0
                }
                CounterOp::Get => *c.lock(),
            },
        )
        .unwrap_or_else(|f| panic!("{}-guarded counter not linearizable: {f:?}", L::NAME));
    }
    stress_lock::<cds_sync::TasLock>(0x5e9c2);
    stress_lock::<cds_sync::TtasLock>(0x5e9c3);
    stress_lock::<cds_sync::TicketLock>(0x5e9c4);
    stress_lock::<cds_sync::ClhLock>(0x5e9c5);
    stress_lock::<cds_sync::McsLock>(0x5e9c6);
}

/// The factored [`cds_sync::Parker`] (the eventcount both the executor
/// and the channels park on, moved down from `cds-exec` this PR) against
/// the eventcount spec under PCT schedules: publish-then-wake racing
/// prepare-then-re-check. An `Await` whose post-`prepare` re-check
/// misses the flag *after* a completed `Signal` is a lost wakeup — the
/// exact bug the prepare/re-check/commit discipline exists to rule out.
#[test]
fn scheduled_parker_eventcount_is_linearizable() {
    use cds_atomic::{AtomicBool, Ordering};
    use cds_lincheck::specs::{EventcountOp, EventcountRes, EventcountSpec};

    struct Gate {
        parker: cds_sync::Parker,
        flag: AtomicBool,
    }

    stress(
        EventcountSpec::default(),
        &opts(0x5e9c7),
        || Gate {
            parker: cds_sync::Parker::new(),
            flag: AtomicBool::new(false),
        },
        |rng, t| {
            if t == 0 && rng.below(2) == 0 {
                EventcountOp::Signal
            } else {
                EventcountOp::Await
            }
        },
        |g, op| match op {
            EventcountOp::Signal => {
                g.flag.store(true, Ordering::SeqCst);
                g.parker.unpark_all();
                EventcountRes::Signaled
            }
            EventcountOp::Await => {
                let _ticket = g.parker.prepare();
                // The classic lost-wakeup window: between announcing the
                // intent to sleep and re-checking the condition.
                cds_core::stress::yield_point();
                let woken = g.flag.load(Ordering::SeqCst);
                g.parker.cancel();
                if woken {
                    EventcountRes::Woken
                } else {
                    EventcountRes::WouldBlock
                }
            }
        },
    )
    .unwrap_or_else(|f| panic!("cds_sync::Parker eventcount not linearizable: {f:?}"));
}

/// `SenseBarrier` round conservation under seeded schedules: no thread
/// leaves round `r` before all `N` threads have arrived at round `r`, and
/// exactly one thread per round is told it was the leader. A sense-reversal
/// bug (stale count reset, round advanced before the reset is visible, a
/// fast thread lapping a slow one) shows up as an arrival count short of
/// `N` or a round with zero/two leaders.
#[test]
fn scheduled_sense_barrier_conserves_rounds() {
    use cds_atomic::{AtomicUsize, Ordering};
    use cds_core::stress as sched;

    const THREADS: usize = 3;
    const ROUNDS: usize = 6;
    let root = opts(0xba113).seed;
    for round in 0..8u64 {
        let run = sched::install(cds_core::stress::StressConfig {
            seed: sched::mix_seed(root, round),
            change_period: 3,
            backoff_denom: 0,
            backoff_spins: 0,
        });
        let barrier = cds_sync::SenseBarrier::new(THREADS);
        let arrivals: Vec<AtomicUsize> = (0..ROUNDS).map(|_| AtomicUsize::new(0)).collect();
        let leaders: Vec<AtomicUsize> = (0..ROUNDS).map(|_| AtomicUsize::new(0)).collect();
        let start = std::sync::Barrier::new(THREADS);
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let barrier = &barrier;
                let arrivals = &arrivals;
                let leaders = &leaders;
                let start = &start;
                s.spawn(move || {
                    let _slot = sched::register(t);
                    start.wait();
                    for r in 0..ROUNDS {
                        arrivals[r].fetch_add(1, Ordering::SeqCst);
                        sched::yield_point();
                        let leader = barrier.wait();
                        if leader {
                            leaders[r].fetch_add(1, Ordering::SeqCst);
                        }
                        // Barrier semantics: every arrival for round `r`
                        // happened-before any thread's release from it.
                        let seen = arrivals[r].load(Ordering::SeqCst);
                        assert_eq!(
                            seen, THREADS,
                            "thread {t} released from round {r} after only {seen} arrivals"
                        );
                    }
                });
            }
        });
        drop(run);
        for (r, l) in leaders.iter().enumerate() {
            assert_eq!(
                l.load(Ordering::SeqCst),
                1,
                "round {r} elected {} leaders",
                l.load(Ordering::SeqCst)
            );
        }
    }
}

/// A capacity-2 `BoundedQueue` checked against a *bounded* sequential
/// queue spec, so every full/empty transition of the tiny ring — the
/// regime where the Vyukov sequence-number protocol does all its work —
/// must linearize, including rejected `try_enqueue`s against a full ring
/// and `try_dequeue`s racing the wrap-around.
#[test]
fn scheduled_tiny_bounded_queue_is_linearizable() {
    use std::collections::VecDeque;

    #[derive(Clone, Debug)]
    enum TryQueueOp {
        TryEnqueue(u64),
        TryDequeue,
    }

    #[derive(Clone, Debug, PartialEq)]
    enum TryQueueRes {
        Enqueued(bool),
        Dequeued(Option<u64>),
    }

    #[derive(Clone, PartialEq, Eq, Hash, Default)]
    struct TryQueueSpec {
        items: VecDeque<u64>,
        capacity: usize,
    }

    impl cds_lincheck::Spec for TryQueueSpec {
        type Op = TryQueueOp;
        type Res = TryQueueRes;

        fn apply(&mut self, op: &TryQueueOp) -> TryQueueRes {
            match op {
                TryQueueOp::TryEnqueue(v) => {
                    if self.items.len() < self.capacity {
                        self.items.push_back(*v);
                        TryQueueRes::Enqueued(true)
                    } else {
                        TryQueueRes::Enqueued(false)
                    }
                }
                TryQueueOp::TryDequeue => TryQueueRes::Dequeued(self.items.pop_front()),
            }
        }
    }

    const CAPACITY: usize = 2;
    stress(
        TryQueueSpec {
            items: VecDeque::new(),
            capacity: CAPACITY,
        },
        &opts(0x90e5),
        || cds_queue::BoundedQueue::<u64>::with_capacity(CAPACITY),
        |rng, t| {
            if rng.below(2) == 0 {
                TryQueueOp::TryEnqueue((t as u64) << 8 | rng.below(16))
            } else {
                TryQueueOp::TryDequeue
            }
        },
        |q, op| match op {
            TryQueueOp::TryEnqueue(v) => TryQueueRes::Enqueued(q.try_enqueue(*v).is_ok()),
            TryQueueOp::TryDequeue => TryQueueRes::Dequeued(q.try_dequeue()),
        },
    )
    .unwrap_or_else(|f| panic!("capacity-2 bounded queue not linearizable: {f:?}"));
}

/// Regression for the Chase–Lev one-element race: the owner's `pop` of the
/// last element and a thief's `steal` both CAS `top`; exactly one may win.
/// Seeded rounds drive the preemption right between the thief's bottom
/// read and its CAS (and between the owner's bottom decrement and *its*
/// CAS), the schedule shapes where a broken fence/CAS pairing would let
/// both sides take the element or lose it entirely.
#[test]
fn scheduled_chase_lev_single_element_is_taken_exactly_once() {
    use cds_core::stress as sched;
    use cds_queue::{ChaseLevDeque, Steal};

    let root = opts(0xc4a5e).seed;
    for round in 0..32u64 {
        let run = sched::install(cds_core::stress::StressConfig {
            seed: sched::mix_seed(root, round),
            change_period: 2,
            backoff_denom: 0,
            backoff_spins: 0,
        });
        let (worker, stealer) = ChaseLevDeque::<u64>::new();
        let start = std::sync::Barrier::new(2);
        let (popped, stolen) = std::thread::scope(|s| {
            let owner = {
                let start = &start;
                s.spawn(move || {
                    let _slot = sched::register(0);
                    start.wait();
                    worker.push(7);
                    sched::yield_point();
                    worker.pop()
                })
            };
            let thief = {
                let stealer = &stealer;
                let start = &start;
                s.spawn(move || {
                    let _slot = sched::register(1);
                    start.wait();
                    // Bounded retries: `Empty` may be a pre-push snapshot,
                    // so probe a few times; `Retry` means we lost a CAS to
                    // the owner and the next probe will resolve to `Empty`.
                    let mut probes = 0;
                    loop {
                        match stealer.steal() {
                            Steal::Success(v) => break Some(v),
                            Steal::Empty => {
                                probes += 1;
                                if probes > 8 {
                                    break None;
                                }
                                sched::yield_point();
                            }
                            Steal::Retry => sched::yield_point(),
                        }
                    }
                })
            };
            (owner.join().unwrap(), thief.join().unwrap())
        });
        drop(run);
        let takers = usize::from(popped.is_some()) + usize::from(stolen.is_some());
        assert_eq!(
            takers, 1,
            "round {round}: element taken by {takers} sides (popped {popped:?}, stolen {stolen:?})"
        );
        assert_eq!(popped.or(stolen), Some(7));
    }
}

/// Acceptance regression: the memoized checker must decide a 40-operation,
/// 4-thread window over `QueueSpec` in well under a second (the plain
/// Wing–Gong search blows up combinatorially on windows this wide).
#[test]
fn memoized_checker_handles_40_op_queue_window_quickly() {
    let queue = cds_queue::MsQueue::<u64>::default();
    let recorder = Recorder::new();
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let queue = &queue;
            let recorder = &recorder;
            s.spawn(move || {
                let mut rng = cds_core::stress::SplitMix64::new(0x40_0b5 + t);
                for _ in 0..10 {
                    if rng.below(2) == 0 {
                        let v = t << 8 | rng.below(16);
                        recorder.record(QueueOp::Enqueue(v), || {
                            queue.enqueue(v);
                            QueueRes::Enqueued
                        });
                    } else {
                        recorder.record(QueueOp::Dequeue, || QueueRes::Dequeued(queue.dequeue()));
                    }
                }
            });
        }
    });
    let history = recorder.into_history();
    assert_eq!(history.len(), 40);
    let start = Instant::now();
    assert!(
        check_linearizable(QueueSpec::<u64>::default(), &history),
        "MS queue produced a non-linearizable window: {history:?}"
    );
    let elapsed = start.elapsed();
    assert!(
        elapsed < Duration::from_secs(1),
        "memoized check took {elapsed:?} on a 40-op window"
    );
}

/// Forced backoff: injected spin delays at yield points stretch critical
/// sections and lock hand-offs; the structures must stay linearizable.
#[test]
fn forced_backoff_does_not_break_linearizability() {
    let options = StressOptions {
        rounds: 8,
        backoff_denom: 4,
        backoff_spins: 64,
        ..opts(0xbac0ff)
    };
    stress(
        QueueSpec::<u64>::default(),
        &options,
        cds_queue::TwoLockQueue::<u64>::default,
        gen_queue,
        |q, op| match op {
            QueueOp::Enqueue(v) => {
                q.enqueue(*v);
                QueueRes::Enqueued
            }
            QueueOp::Dequeue => QueueRes::Dequeued(q.dequeue()),
        },
    )
    .unwrap_or_else(|f| panic!("two-lock queue under forced backoff: {f:?}"));
}

/// Poisoned-lock recovery: every lock-based structure goes through the
/// `parking_lot` shim, which recovers the inner `std` lock when a holder
/// panics (real `parking_lot` never poisons). A worker dying while holding
/// the lock must not wedge or corrupt the structure.
#[test]
fn lock_based_structures_survive_a_crashed_worker() {
    // Direct shim check: panic while holding the guard, then lock again.
    let m = parking_lot::Mutex::new(7);
    assert!(crash_worker(&m, |m| {
        let _guard = m.lock();
        panic!("die holding the lock");
    }));
    assert_eq!(*m.lock(), 7, "shim must recover a poisoned lock");

    // Structure-level check: a storm thread panics mid-run; the coarse
    // (single-mutex) queue keeps serving the survivors and the foreground.
    let q = cds_queue::CoarseQueue::<u64>::default();
    for i in 0..8 {
        q.enqueue(i);
    }
    with_contention_storm(
        &q,
        &StormOptions {
            threads: 4,
            ops_per_thread: 200,
        },
        |q, t, i| {
            q.enqueue((t * 1000 + i) as u64);
            q.dequeue();
            if t == 0 && i == 50 {
                panic!("planted storm casualty");
            }
        },
        |q, _| {
            for i in 0..100u64 {
                q.enqueue(i);
                assert!(q.dequeue().is_some());
            }
        },
    );
    // Quiescent: the queue still functions and reports a sane length.
    q.enqueue(99);
    assert!(q.dequeue().is_some());
}

/// DebugReclaim regression: a toy structure with a *planted* reclamation
/// protocol violation — it caches a raw pointer at construction and later
/// re-protects it without re-validating reachability — must be caught by
/// the debug backend ("use-after-retire", with both thread ids), and the
/// property harness must shrink the offending schedule to its 2-operation
/// core (`[Update, BuggyRead]`) under a pinned seed so the failure replays
/// byte-for-byte.
#[test]
fn debug_reclaim_catches_and_shrinks_injected_use_after_retire() {
    use cds_atomic::Ordering;
    use cds_lincheck::prop::{forall_vec, Config, Prng};
    use cds_reclaim::epoch::{Atomic, Owned, Shared};
    use cds_reclaim::{DebugGuard, DebugReclaim, ReclaimGuard, Reclaimer};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    #[derive(Debug, Clone, Copy)]
    enum Op {
        Update(u64),
        BuggyRead,
    }

    /// Single-slot register with the bug: `new` stashes the initial node's
    /// raw address, and `buggy_read` protects that stale address under a
    /// *fresh* guard instead of re-reading the slot. Once an `Update` has
    /// swapped the node out and retired it, the read touches a node a real
    /// reclaimer could already have freed.
    struct BuggySlot {
        slot: Atomic<u64>,
        cached: *mut u64,
        /// Long-lived guard (entered before every retire, so it never
        /// trips the checker itself) standing in for a reader registration
        /// that keeps the registry populated across operations.
        _keepalive: DebugGuard,
    }

    impl BuggySlot {
        fn new() -> Self {
            let keepalive = DebugReclaim::enter();
            let slot = Atomic::new(0u64);
            let cached = slot.load_raw(Ordering::Relaxed);
            BuggySlot {
                slot,
                cached,
                _keepalive: keepalive,
            }
        }

        fn update(&self, v: u64) {
            let guard = DebugReclaim::enter();
            let fresh = Owned::new(v).into_shared(&guard);
            let old = self.slot.swap(fresh, Ordering::AcqRel, &guard);
            // SAFETY: unlinked by the swap; retired exactly once.
            unsafe { guard.retire(old) };
        }

        fn buggy_read(&self) -> u64 {
            let guard = DebugReclaim::enter();
            // BUG: protects the construction-time pointer without
            // re-validating that the slot still holds it. DebugReclaim
            // panics here when the node was retired before `guard` began.
            let p = guard.protect_ptr(0, Shared::from_raw(self.cached));
            // SAFETY: only reached when the node was never retired (the
            // checker panics above otherwise, and `_keepalive` quarantines
            // retired nodes so the poison record is still present).
            unsafe { *p.deref() }
        }
    }

    impl Drop for BuggySlot {
        fn drop(&mut self) {
            let p = self.slot.load_raw(Ordering::Relaxed);
            // SAFETY: the current slot value was never retired; the test
            // owns the structure exclusively here.
            unsafe { drop(Box::from_raw(p)) };
        }
    }

    let config = Config {
        cases: 64,
        seed: 0xdeb065eed, // pinned: the report below must be reproducible
        max_len: 12,
    };
    let gen = |rng: &mut Prng| {
        if rng.below(2) == 0 {
            Op::Update(rng.below(100))
        } else {
            Op::BuggyRead
        }
    };
    let err = catch_unwind(AssertUnwindSafe(|| {
        forall_vec(&config, gen, |script: &[Op]| {
            let s = BuggySlot::new();
            for op in script {
                match op {
                    Op::Update(v) => s.update(*v),
                    Op::BuggyRead => {
                        s.buggy_read();
                    }
                }
            }
        });
    }))
    .expect_err("the planted use-after-retire must be caught");

    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        msg.contains("use-after-retire"),
        "wrong failure kind: {msg}"
    );
    assert!(
        msg.contains("minimized to 2 elems"),
        "shrinker did not reach the [Update, BuggyRead] core: {msg}"
    );
    assert!(
        msg.contains("CDS_PROP_SEED"),
        "missing the replay hint: {msg}"
    );

    // The panic unwound with retired nodes still quarantined; drain them
    // now that every guard is gone so later tests see a clean registry.
    DebugReclaim::collect();
    assert_eq!(DebugReclaim::retired_backlog(), 0);
}

/// Contention storm over a lock-free structure: every operation — hammer
/// and foreground alike — is recorded, and the full 64-op window must be
/// linearizable. This also exercises the memoized checker right at its
/// window cap.
#[test]
fn storm_window_is_linearizable() {
    let stack = cds_stack::TreiberStack::<u64>::default();
    let recorder = Recorder::new();
    with_contention_storm(
        &stack,
        &StormOptions {
            threads: 3,
            ops_per_thread: 8,
        },
        |s, t, i| {
            // Hammers use a disjoint value space (high bit set).
            let v = 1 << 63 | (t as u64) << 32 | i as u64;
            if i % 2 == 0 {
                recorder.record(StackOp::Push(v), || {
                    s.push(v);
                    StackRes::Pushed
                });
            } else {
                recorder.record(StackOp::Pop, || StackRes::Popped(s.pop()));
            }
        },
        |s, _| {
            let mut rng = cds_core::stress::SplitMix64::new(0x5708);
            for i in 0..40u64 {
                if rng.below(2) == 0 {
                    recorder.record(StackOp::Push(i), || {
                        s.push(i);
                        StackRes::Pushed
                    });
                } else {
                    recorder.record(StackOp::Pop, || StackRes::Popped(s.pop()));
                }
            }
        },
    );
    let history = recorder.into_history();
    assert_eq!(history.len(), 64);
    assert!(
        check_linearizable(StackSpec::<u64>::default(), &history),
        "Treiber stack window under storm not linearizable: {history:?}"
    );
}
